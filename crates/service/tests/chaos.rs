//! End-to-end chaos and drain conformance against the real daemon.
//!
//! Two claims under test, both over a real `egobtw-serve` process:
//!
//! 1. **Chaos + crash**: drive the oracle-checked chaos workload through
//!    the seeded fault proxy (delay, stall, mid-frame cut, corruption,
//!    reset), then SIGKILL the daemon and restart it over the same data
//!    dir — zero protocol violations during the run, zero acked-write
//!    loss after recovery.
//! 2. **SIGTERM drain**: while an aggressively-deadlined exact TOPK is
//!    in flight, SIGTERM the daemon — it must exit 0 with the WAL
//!    flushed, and a restart must recover every acked epoch.

use conformance::{run_chaos_workload, verify_recovered, ChaosProxy};
use egobtw_service::server::{connect_with_retry, roundtrip};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const NAME: &str = "chaosbox";

/// Fresh unique temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "egobtw-chaos-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The daemon under test; killed on drop so a failing assertion never
/// leaks a process.
struct Daemon {
    child: Child,
    addr: String,
    /// Keeps the stdout pipe readable for the daemon's drain prints.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `egobtw-serve` on an OS-picked port and waits for its
/// `listening on` line. The dataset loads from `snap` on first boot and
/// recovers from `data_dir` on later ones.
fn spawn_daemon(data_dir: &Path, snap: Option<&Path>, extra: &[&str]) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_egobtw-serve"));
    cmd.args(["--listen", "127.0.0.1:0", "--threads", "2"]);
    cmd.args(["--data-dir", data_dir.to_str().unwrap()]);
    if let Some(snap) = snap {
        cmd.args(["--load", &format!("{NAME}={}", snap.to_str().unwrap())]);
    }
    cmd.args(extra);
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn egobtw-serve");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut addr = None;
    let mut line = String::new();
    while {
        line.clear();
        stdout.read_line(&mut line).expect("daemon stdout") > 0
    } {
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = Some(rest.split_whitespace().next().unwrap().to_string());
            break;
        }
    }
    Daemon {
        child,
        addr: addr.expect("daemon never printed its address"),
        _stdout: stdout,
    }
}

/// Claim 1: the committed chaos schedule, SIGKILL, restart — no
/// violations, no acked-write loss.
#[test]
fn chaos_schedule_survives_sigkill_with_zero_acked_write_loss() {
    let seed = 0xC4A05u64;
    let g0 = egobtw_gen::gnp(40, 0.14, seed);
    let dir = TempDir::new("kill");
    let data_dir = dir.path().join("data");
    std::fs::create_dir_all(&data_dir).unwrap();
    let snap = dir.path().join("g0.snap");
    egobtw_graph::io::write_snapshot_file(&g0, None, &snap).unwrap();

    let mut daemon = spawn_daemon(&data_dir, Some(&snap), &[]);
    let mut proxy = ChaosProxy::spawn(&daemon.addr, seed).unwrap();
    let report = run_chaos_workload(&proxy.addr(), NAME, &g0, seed, 18, 3)
        .expect("chaos workload must complete");
    proxy.stop();
    assert!(
        report.violations.is_empty(),
        "oracle violations under chaos: {:#?}",
        report.violations
    );
    assert!(report.acked_epoch >= 18, "every batch must eventually ack");

    // SIGKILL — no drain, no goodbye — then recover over the same dir.
    let _ = daemon.child.kill();
    let _ = daemon.child.wait();
    let daemon2 = spawn_daemon(&data_dir, None, &[]);
    verify_recovered(&daemon2.addr, NAME, &g0, &report)
        .unwrap_or_else(|e| panic!("post-SIGKILL recovery: {e}"));
}

/// Claim 2: SIGTERM with a deadline-expired exact TOPK in flight →
/// clean drain, exit 0, WAL flushed (restart recovers the acked epoch).
#[cfg(unix)]
#[test]
fn sigterm_drains_flushes_wal_and_exits_zero() {
    let seed = 0xD4A19u64;
    // Big enough that an exact TOPK outlives a 1 ms budget, so the drain
    // overlaps a deadline-expired computation.
    let g0 = egobtw_gen::gnp(220, 0.1, seed);
    let dir = TempDir::new("drain");
    let data_dir = dir.path().join("data");
    std::fs::create_dir_all(&data_dir).unwrap();
    let snap = dir.path().join("g0.snap");
    egobtw_graph::io::write_snapshot_file(&g0, None, &snap).unwrap();

    let mut daemon = spawn_daemon(&data_dir, Some(&snap), &["--drain-grace", "3000"]);
    let (mut reader, mut writer) =
        connect_with_retry(&daemon.addr, Duration::from_secs(10)).unwrap();

    // Two acked, seq-tokened writes the WAL must not lose.
    for epoch in 0..2u64 {
        let reply = roundtrip(
            &mut reader,
            &mut writer,
            &format!("UPDATE {NAME} seq={epoch} +1,2 +3,4"),
        )
        .unwrap();
        assert!(reply.starts_with("OK update"), "{reply}");
    }

    // Put a deadline-expired exact TOPK in flight, then SIGTERM while
    // the worker is on it.
    egobtw_service::write_frame(
        &mut writer,
        &format!("DEADLINE 1 TOPK {NAME} 8 core::compute_all"),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let status = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill -TERM failed");

    let exit = daemon.child.wait().expect("wait for drained daemon");
    assert!(
        exit.success(),
        "SIGTERM drain must exit 0, got {exit:?} — drain path paniced or hung"
    );

    // The WAL was flushed on the way out: a restart recovers both epochs.
    let daemon2 = spawn_daemon(&data_dir, None, &[]);
    let (mut r2, mut w2) = connect_with_retry(&daemon2.addr, Duration::from_secs(10)).unwrap();
    let stats = roundtrip(&mut r2, &mut w2, &format!("STATS {NAME}")).unwrap();
    assert!(
        stats.starts_with("OK stats") && stats.contains(" epoch=2 "),
        "acked epochs must survive the drain: {stats}"
    );
}
