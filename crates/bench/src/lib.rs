//! Shared harness for the experiment reproduction driver and the
//! Criterion benches: the synthetic dataset registry (stand-ins for the
//! paper's five SNAP graphs — DESIGN.md §5), wall-clock helpers, and
//! fixed-width table printing that mirrors the paper's layout.

use egobtw_gen::rmat::RmatParams;
use egobtw_graph::CsrGraph;
use std::time::{Duration, Instant};

pub mod json;

/// A named benchmark graph.
pub struct Dataset {
    /// Stand-in name, e.g. `youtube-like`.
    pub name: &'static str,
    /// Which paper dataset it substitutes.
    pub substitutes: &'static str,
    /// The graph itself.
    pub graph: CsrGraph,
}

/// Scales a base size by `scale`, clamping to a sane floor.
fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(64)
}

/// The skewed R-MAT stand-in on its own — the approx-engine demo builds
/// it at a larger multiplier than the exact sweeps can afford, so it is
/// reusable outside [`standins`].
pub fn rmat_standin(scale: f64) -> Dataset {
    // R-MAT scale chosen so n tracks the multiplier.
    let target_n = scaled(32_768, scale);
    let s = (usize::BITS - 1 - target_n.leading_zeros()).max(8);
    Dataset {
        name: "wikitalk-like",
        substitutes: "WikiTalk (communication)",
        graph: egobtw_gen::rmat(s, 3, RmatParams::skewed(), 0xEB02),
    }
}

/// The five stand-ins at a given size multiplier (`scale = 1.0` is the
/// default experiment size; `--scale 0.2` gives a quick smoke run).
pub fn standins(scale: f64) -> Vec<Dataset> {
    vec![
        Dataset {
            name: "youtube-like",
            substitutes: "Youtube (social)",
            graph: egobtw_gen::barabasi_albert(scaled(30_000, scale), 3, 0xEB01),
        },
        rmat_standin(scale),
        Dataset {
            name: "dblp-like",
            substitutes: "DBLP (collaboration)",
            graph: egobtw_gen::planted_partition(
                egobtw_gen::community::PlantedPartition {
                    communities: scaled(3_000, scale),
                    community_size: 10,
                    p_in: 0.45,
                    cross_edges_per_vertex: 0.4,
                },
                0xEB03,
            ),
        },
        Dataset {
            name: "pokec-like",
            substitutes: "Pokec (social, dense)",
            graph: egobtw_gen::barabasi_albert(scaled(25_000, scale), 10, 0xEB04),
        },
        Dataset {
            name: "livejournal-like",
            substitutes: "LiveJournal (social, largest)",
            graph: egobtw_gen::barabasi_albert(scaled(50_000, scale), 7, 0xEB05),
        },
    ]
}

/// The Exp-7 case-study graphs (DB and IR co-authorship subnetworks),
/// sized like the paper's extractions (37k/132k and 13k/37k).
pub fn case_study(scale: f64) -> Vec<Dataset> {
    vec![
        Dataset {
            name: "DB-like",
            substitutes: "DBLP DB subgraph (37,177 v / 131,715 e)",
            graph: egobtw_gen::planted_partition(
                egobtw_gen::community::PlantedPartition {
                    communities: scaled(3_100, scale),
                    community_size: 12,
                    p_in: 0.45,
                    cross_edges_per_vertex: 0.55,
                },
                0xCA5E,
            ),
        },
        Dataset {
            name: "IR-like",
            substitutes: "DBLP IR subgraph (13,445 v / 37,428 e)",
            graph: egobtw_gen::planted_partition(
                egobtw_gen::community::PlantedPartition {
                    communities: scaled(1_350, scale),
                    community_size: 10,
                    p_in: 0.4,
                    cross_edges_per_vertex: 0.5,
                },
                0xCA5F,
            ),
        },
    ]
}

/// Times one invocation.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Milliseconds with three decimals, right-aligned — the unit used in all
/// printed tables.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Prints a fixed-width table: a header row, a rule, then rows. Column
/// widths adapt to content.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{:<w$}", cell, w = widths[i]));
            } else {
                s.push_str(&format!("  {:>w$}", cell, w = widths[i]));
            }
        }
        s
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standins_have_expected_character() {
        let sets = standins(0.05);
        assert_eq!(sets.len(), 5);
        for d in &sets {
            assert!(d.graph.n() > 0 && d.graph.m() > 0, "{} is empty", d.name);
        }
        // Heavy tails where expected.
        let yt = &sets[0].graph;
        assert!(yt.max_degree() > 10 * (2 * yt.m() / yt.n()).max(1));
    }

    #[test]
    fn case_study_sizes_scale() {
        let cs = case_study(0.05);
        assert_eq!(cs.len(), 2);
        assert!(cs[0].graph.n() > cs[1].graph.n());
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.000");
    }
}
