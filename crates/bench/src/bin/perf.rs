//! Reproducible perf harness: the bench-trajectory driver.
//!
//! Runs the five dataset stand-ins × {`compute_all`, `opt_search` θ=1.05,
//! `edge_pebw` at 1/2/4 threads} with warmup + median-of-R timing, on two
//! configurations of every dataset:
//!
//! * **baseline** — the pre-change kernels: a bitmap-free CSR
//!   (`HybridConfig::disabled`), original vertex ids, merge/gallop
//!   dispatch pinned to `KernelParams::legacy`;
//! * **hybrid** — the degree-descending relabeled twin with auto-chosen
//!   hub bitmap rows, i.e. the representation every engine now runs on.
//!
//! Both timings and their ratio are recorded per case in
//! `BENCH_topk.json`, so the speedup claim is reproducible in-file and
//! future PRs have a machine-readable trajectory to not regress.
//!
//! ```text
//! cargo run --release -p egobtw-bench --bin perf -- [flags]
//!
//! flags:
//!   --scale S     dataset size multiplier (default 0.5)
//!   --rounds R    timed rounds per case, median reported (default 5)
//!   --warmup W    untimed runs per case (default 1)
//!   --k K         top-k for the search engines (default 100)
//!   --approx-scale S   R-MAT multiplier for the approx demo (default 5)
//!   --approx-trials T  repeated (ε, δ) validation trials (default 8)
//!   --out PATH    output file (default BENCH_topk.json)
//!   --validate PATH   don't run: schema-check an existing file (CI smoke)
//! ```
//!
//! Correctness guard: for every dataset the baseline and hybrid
//! `compute_all` score vectors are compared (inverse-mapped, relative
//! 1e-9) before any timing is reported.
//!
//! The `approx` section is the sampling-engine payoff demo: on the
//! skewed R-MAT stand-in at `--approx-scale` (default 5 — large enough
//! that exact `compute_all` takes minutes), it times exact vs
//! `approx_topk` at (ε = 0.05, δ = 0.01, k = 8) and re-runs the sampler
//! `--approx-trials` times with fresh seeds, counting statistical-
//! contract violations (CI containment, bounded displacement, estimate
//! accuracy, rank-slack discipline) against the exact truth. The
//! committed run records the observed speedup and a zero violation
//! count; the validator enforces both.

use egobtw_bench::json::Json;
use egobtw_bench::{rmat_standin, standins};
use egobtw_core::{
    approx_topk, compute_all::compute_all_with, opt_bsearch, ApproxParams, ApproxTopk, OptParams,
};
use egobtw_graph::{CsrGraph, HybridConfig, KernelParams, Relabeling};
use egobtw_parallel::edge_pebw;
use std::time::Instant;

const SCHEMA: &str = "egobtw/bench-topk/v2";
/// The approx demo's fixed operating point (the headline claim).
const APPROX_EPS: f64 = 0.05;
const APPROX_DELTA: f64 = 0.01;
const APPROX_K: usize = 8;

struct Args {
    scale: f64,
    rounds: usize,
    warmup: usize,
    k: usize,
    approx_scale: f64,
    approx_trials: usize,
    out: String,
    validate: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        scale: 0.5,
        rounds: 5,
        warmup: 1,
        k: 100,
        approx_scale: 5.0,
        approx_trials: 8,
        out: "BENCH_topk.json".into(),
        validate: None,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--scale" => args.scale = value(i)?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--rounds" => args.rounds = value(i)?.parse().map_err(|e| format!("--rounds: {e}"))?,
            "--warmup" => args.warmup = value(i)?.parse().map_err(|e| format!("--warmup: {e}"))?,
            "--k" => args.k = value(i)?.parse().map_err(|e| format!("--k: {e}"))?,
            "--approx-scale" => {
                args.approx_scale = value(i)?
                    .parse()
                    .map_err(|e| format!("--approx-scale: {e}"))?;
            }
            "--approx-trials" => {
                args.approx_trials = value(i)?
                    .parse()
                    .map_err(|e| format!("--approx-trials: {e}"))?;
            }
            "--out" => args.out = value(i)?.clone(),
            "--validate" => args.validate = Some(value(i)?.clone()),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if args.rounds == 0 {
        return Err("--rounds must be ≥ 1".into());
    }
    if args.approx_trials == 0 {
        return Err("--approx-trials must be ≥ 1".into());
    }
    Ok(args)
}

/// Warmup + median-of-R wall-clock nanoseconds for one closure.
fn median_ns<T>(warmup: usize, rounds: usize, mut f: impl FnMut() -> T) -> u64 {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<u64> = (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One timed engine configuration on one dataset.
struct CaseResult {
    engine: String,
    hybrid_ns: u64,
    baseline_ns: u64,
}

fn run_dataset(
    name: &str,
    graph: &CsrGraph,
    args: &Args,
) -> (Vec<CaseResult>, /* hub stats */ (usize, usize, u64)) {
    // Baseline representation: exactly what shipped before this subsystem.
    let plain = graph.with_hybrid_config(&HybridConfig::disabled());
    let legacy = KernelParams::legacy();
    // Hybrid representation: degree-relabeled twin with auto hub rows.
    let t0 = Instant::now();
    let relab = Relabeling::degree_descending(graph);
    let rg = relab.apply(graph);
    let prep_ns = t0.elapsed().as_nanos() as u64;

    // Correctness guard before timing anything.
    let base_scores = compute_all_with(&plain, &legacy).0;
    let hybrid_scores = relab.restore_scores(&compute_all_with(&rg, &KernelParams::new()).0);
    for (v, (a, b)) in base_scores.iter().zip(&hybrid_scores).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
            "{name}: hybrid CB({v}) = {b} diverges from baseline {a}"
        );
    }

    let w = args.warmup;
    let r = args.rounds;
    let mut cases = vec![CaseResult {
        engine: "compute_all".into(),
        hybrid_ns: median_ns(w, r, || compute_all_with(&rg, &KernelParams::new())),
        baseline_ns: median_ns(w, r, || compute_all_with(&plain, &legacy)),
    }];
    let params = OptParams { theta: 1.05 };
    cases.push(CaseResult {
        engine: format!("opt_search(theta=1.05,k={})", args.k),
        hybrid_ns: median_ns(w, r, || opt_bsearch(&rg, args.k, params)),
        baseline_ns: median_ns(w, r, || opt_bsearch(&plain, args.k, params)),
    });
    for threads in [1usize, 2, 4] {
        cases.push(CaseResult {
            engine: format!("edge_pebw(t={threads})"),
            hybrid_ns: median_ns(w, r, || edge_pebw(&rg, threads)),
            baseline_ns: median_ns(w, r, || edge_pebw(&plain, threads)),
        });
    }
    let hub_stats = (rg.hub_count(), rg.hub_threshold().unwrap_or(0), prep_ns);
    (cases, hub_stats)
}

/// Checks one sampler output against the exact truth: the same
/// statistical contract the conformance tier's `approx_check` enforces
/// (CI containment, bounded displacement below `c*_k`, per-entry
/// estimate accuracy, rank-slack discipline on a clean stop). Returns a
/// description of the first violation, if any — the δ-events the trials
/// loop counts.
fn approx_violation(truth: &[f64], out: &ApproxTopk, k: usize, eps: f64) -> Option<String> {
    let expect = k.min(truth.len());
    if out.entries.len() != expect {
        return Some(format!(
            "returned {} entries, expected {expect}",
            out.entries.len()
        ));
    }
    if expect == 0 {
        return None;
    }
    let mut sorted = truth.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let ck = sorted[expect - 1];
    let atol = 1e-9 * ck.abs().max(1.0);
    for e in &out.entries {
        let t = truth[e.vertex as usize];
        if t < e.lo - atol || t > e.hi + atol {
            return Some(format!(
                "vertex {} true CB {t} outside CI [{}, {}]",
                e.vertex, e.lo, e.hi
            ));
        }
        if t < ck - eps * ck.max(1.0) - atol {
            return Some(format!(
                "vertex {} true CB {t} displaced more than ε below c*_k = {ck}",
                e.vertex
            ));
        }
        if (e.estimate - t).abs() > eps * ck.max(t).max(1.0) + atol {
            return Some(format!(
                "vertex {} estimate {} more than ε-slack from true CB {t}",
                e.vertex, e.estimate
            ));
        }
    }
    if !out.budget_exhausted && out.rank_slack > eps * ck.max(1.0) + atol {
        return Some(format!(
            "clean stop but rank slack {} exceeds ε·max(1, c*_k)",
            out.rank_slack
        ));
    }
    None
}

/// SplitMix64 finalizer for decorrelated per-trial seeds.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The sampling-engine payoff demo + repeated-trials honesty check.
fn run_approx(args: &Args) -> Json {
    let d = rmat_standin(args.approx_scale);
    let g = &d.graph;
    eprintln!(
        "perf: approx demo on {} at scale {} (n={}, m={}) ...",
        d.name,
        args.approx_scale,
        g.n(),
        g.m()
    );

    let t0 = Instant::now();
    let truth = egobtw_core::compute_all(g).0;
    let exact_ns = t0.elapsed().as_nanos() as u64;
    eprintln!("  exact compute_all          {exact_ns:>14} ns");

    let params = ApproxParams::new(APPROX_EPS, APPROX_DELTA);
    let approx_ns = median_ns(args.warmup.min(1), args.rounds, || {
        approx_topk(g, APPROX_K, &params)
    });
    let headline = approx_topk(g, APPROX_K, &params);
    let speedup = exact_ns as f64 / (approx_ns as f64).max(1.0);
    eprintln!(
        "  approx_topk(eps={APPROX_EPS},delta={APPROX_DELTA},k={APPROX_K}) \
         {approx_ns:>14} ns   {speedup:.2}x   samples={} rounds={}",
        headline.samples_drawn, headline.rounds
    );

    // Repeated trials with fresh seeds: every run must honor the full
    // statistical contract against the exact truth. A nonzero count here
    // fails validation — the committed file proves an honest run.
    let mut violations = 0usize;
    for trial in 0..args.approx_trials {
        let mut p = params;
        p.seed = mix64(0xBE2C_11A7 ^ trial as u64);
        let out = approx_topk(g, APPROX_K, &p);
        if let Some(why) = approx_violation(&truth, &out, APPROX_K, APPROX_EPS) {
            eprintln!("  trial {trial}: VIOLATION: {why}");
            violations += 1;
        }
    }
    eprintln!(
        "  trials={} violations={violations} (δ promised {APPROX_DELTA})",
        args.approx_trials
    );

    Json::Obj(vec![
        ("dataset".into(), Json::Str(d.name.into())),
        ("approx_scale".into(), Json::Num(args.approx_scale)),
        ("n".into(), Json::Num(g.n() as f64)),
        ("m".into(), Json::Num(g.m() as f64)),
        ("k".into(), Json::Num(APPROX_K as f64)),
        ("eps".into(), Json::Num(APPROX_EPS)),
        ("delta".into(), Json::Num(APPROX_DELTA)),
        ("exact_ns".into(), Json::Num(exact_ns as f64)),
        ("approx_median_ns".into(), Json::Num(approx_ns as f64)),
        (
            "speedup".into(),
            Json::Num((speedup * 1000.0).round() / 1000.0),
        ),
        (
            "samples_drawn".into(),
            Json::Num(headline.samples_drawn as f64),
        ),
        (
            "sampling_rounds".into(),
            Json::Num(f64::from(headline.rounds)),
        ),
        (
            "budget_exhausted".into(),
            Json::Bool(headline.budget_exhausted),
        ),
        ("trials".into(), Json::Num(args.approx_trials as f64)),
        ("violations".into(), Json::Num(violations as f64)),
    ])
}

fn run(args: &Args) {
    let datasets = standins(args.scale);
    let mut case_rows: Vec<Json> = Vec::new();
    for d in &datasets {
        eprintln!(
            "perf: {} (n={}, m={}) ...",
            d.name,
            d.graph.n(),
            d.graph.m()
        );
        let (cases, (hubs, threshold, prep_ns)) = run_dataset(d.name, &d.graph, args);
        for c in &cases {
            let speedup = c.baseline_ns as f64 / (c.hybrid_ns as f64).max(1.0);
            eprintln!(
                "  {:<28} hybrid {:>12} ns   baseline {:>12} ns   {:.2}x",
                c.engine, c.hybrid_ns, c.baseline_ns, speedup
            );
            case_rows.push(Json::Obj(vec![
                ("dataset".into(), Json::Str(d.name.into())),
                ("engine".into(), Json::Str(c.engine.clone())),
                ("n".into(), Json::Num(d.graph.n() as f64)),
                ("m".into(), Json::Num(d.graph.m() as f64)),
                ("hubs".into(), Json::Num(hubs as f64)),
                ("hub_threshold".into(), Json::Num(threshold as f64)),
                ("prep_ns".into(), Json::Num(prep_ns as f64)),
                ("median_ns".into(), Json::Num(c.hybrid_ns as f64)),
                ("baseline_median_ns".into(), Json::Num(c.baseline_ns as f64)),
                (
                    "speedup".into(),
                    Json::Num((speedup * 1000.0).round() / 1000.0),
                ),
            ]));
        }
    }
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("scale".into(), Json::Num(args.scale)),
        ("rounds".into(), Json::Num(args.rounds as f64)),
        ("warmup".into(), Json::Num(args.warmup as f64)),
        ("k".into(), Json::Num(args.k as f64)),
        (
            "baseline".into(),
            Json::Str("pre-hybrid kernels: bitmap-free CSR, original ids, merge/gallop".into()),
        ),
        (
            "hybrid".into(),
            Json::Str("degree-relabeled twin, auto hub-bitmap rows, adaptive dispatch".into()),
        ),
        ("cases".into(), Json::Arr(case_rows)),
        ("approx".into(), run_approx(args)),
    ]);
    let mut text = doc.pretty();
    text.push('\n');
    std::fs::write(&args.out, text).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);
}

/// Schema check for CI: the file parses, carries the expected schema tag,
/// and every case row has the mandatory fields with sane types. No timing
/// assertions — machines differ; the trajectory comparison is a human /
/// reviewer concern.
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = Json::parse(&text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema tag")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    for field in ["scale", "rounds", "warmup", "k"] {
        doc.get(field)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric field {field:?}"))?;
    }
    let cases = doc
        .get("cases")
        .and_then(Json::as_arr)
        .ok_or("missing cases array")?;
    if cases.is_empty() {
        return Err("cases array is empty".into());
    }
    let mut datasets = std::collections::BTreeSet::new();
    let mut engines = std::collections::BTreeSet::new();
    for (i, case) in cases.iter().enumerate() {
        let field = |name: &str| {
            case.get(name)
                .ok_or_else(|| format!("case {i}: missing field {name:?}"))
        };
        datasets.insert(
            field("dataset")?
                .as_str()
                .ok_or_else(|| format!("case {i}: dataset not a string"))?
                .to_string(),
        );
        engines.insert(
            field("engine")?
                .as_str()
                .ok_or_else(|| format!("case {i}: engine not a string"))?
                .to_string(),
        );
        for name in ["median_ns", "baseline_median_ns", "speedup"] {
            let x = field(name)?
                .as_num()
                .ok_or_else(|| format!("case {i}: {name} not a number"))?;
            if !(x.is_finite() && x > 0.0) {
                return Err(format!("case {i}: {name} = {x} is not a positive number"));
            }
        }
    }
    if datasets.len() < 5 {
        return Err(format!(
            "only {} datasets covered, expected 5",
            datasets.len()
        ));
    }
    if engines.len() < 5 {
        return Err(format!(
            "only {} engine configs covered, expected ≥ 5",
            engines.len()
        ));
    }

    // v2: the approx demo section. Violations must be zero on every run;
    // the ≥ 20× headline is enforced only at demo scale (≥ 5), so CI's
    // small-scale regeneration still validates.
    let approx = doc.get("approx").ok_or("missing approx section")?;
    let num = |name: &str| {
        approx
            .get(name)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("approx: missing numeric field {name:?}"))
    };
    for name in [
        "n",
        "m",
        "k",
        "eps",
        "delta",
        "exact_ns",
        "approx_median_ns",
    ] {
        let x = num(name)?;
        if !(x.is_finite() && x > 0.0) {
            return Err(format!("approx: {name} = {x} is not a positive number"));
        }
    }
    let trials = num("trials")?;
    if trials < 1.0 {
        return Err(format!("approx: trials = {trials}, expected ≥ 1"));
    }
    let violations = num("violations")?;
    if violations != 0.0 {
        return Err(format!(
            "approx: {violations} statistical-contract violations recorded — \
             the committed run must be honest"
        ));
    }
    let approx_scale = num("approx_scale")?;
    let speedup = num("speedup")?;
    if !(speedup.is_finite() && speedup > 0.0) {
        return Err(format!("approx: speedup = {speedup} is not positive"));
    }
    if approx_scale >= 5.0 && speedup < 20.0 {
        return Err(format!(
            "approx: speedup {speedup}x at demo scale {approx_scale}, expected ≥ 20x"
        ));
    }
    println!(
        "{path}: ok ({} cases, {} datasets × {} engines; approx {speedup}x, \
         {trials} trials, 0 violations)",
        cases.len(),
        datasets.len(),
        engines.len()
    );
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: perf [--scale S] [--rounds R] [--warmup W] [--k K] \
                 [--approx-scale S] [--approx-trials T] [--out PATH] | --validate PATH"
            );
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.validate {
        if let Err(e) = validate(path) {
            eprintln!("{path}: INVALID: {e}");
            std::process::exit(1);
        }
        return;
    }
    run(&args);
}
