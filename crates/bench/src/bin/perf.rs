//! Reproducible perf harness: the bench-trajectory driver.
//!
//! Runs the five dataset stand-ins × {`compute_all`, `opt_search` θ=1.05,
//! `edge_pebw` at 1/2/4 threads} with warmup + median-of-R timing, on two
//! configurations of every dataset:
//!
//! * **baseline** — the pre-change kernels: a bitmap-free CSR
//!   (`HybridConfig::disabled`), original vertex ids, merge/gallop
//!   dispatch pinned to `KernelParams::legacy`;
//! * **hybrid** — the degree-descending relabeled twin with auto-chosen
//!   hub bitmap rows, i.e. the representation every engine now runs on.
//!
//! Both timings and their ratio are recorded per case in
//! `BENCH_topk.json`, so the speedup claim is reproducible in-file and
//! future PRs have a machine-readable trajectory to not regress.
//!
//! ```text
//! cargo run --release -p egobtw-bench --bin perf -- [flags]
//!
//! flags:
//!   --scale S     dataset size multiplier (default 0.5)
//!   --rounds R    timed rounds per case, median reported (default 5)
//!   --warmup W    untimed runs per case (default 1)
//!   --k K         top-k for the search engines (default 100)
//!   --out PATH    output file (default BENCH_topk.json)
//!   --validate PATH   don't run: schema-check an existing file (CI smoke)
//! ```
//!
//! Correctness guard: for every dataset the baseline and hybrid
//! `compute_all` score vectors are compared (inverse-mapped, relative
//! 1e-9) before any timing is reported.

use egobtw_bench::json::Json;
use egobtw_bench::standins;
use egobtw_core::{compute_all::compute_all_with, opt_bsearch, OptParams};
use egobtw_graph::{CsrGraph, HybridConfig, KernelParams, Relabeling};
use egobtw_parallel::edge_pebw;
use std::time::Instant;

const SCHEMA: &str = "egobtw/bench-topk/v1";

struct Args {
    scale: f64,
    rounds: usize,
    warmup: usize,
    k: usize,
    out: String,
    validate: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        scale: 0.5,
        rounds: 5,
        warmup: 1,
        k: 100,
        out: "BENCH_topk.json".into(),
        validate: None,
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--scale" => args.scale = value(i)?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--rounds" => args.rounds = value(i)?.parse().map_err(|e| format!("--rounds: {e}"))?,
            "--warmup" => args.warmup = value(i)?.parse().map_err(|e| format!("--warmup: {e}"))?,
            "--k" => args.k = value(i)?.parse().map_err(|e| format!("--k: {e}"))?,
            "--out" => args.out = value(i)?.clone(),
            "--validate" => args.validate = Some(value(i)?.clone()),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if args.rounds == 0 {
        return Err("--rounds must be ≥ 1".into());
    }
    Ok(args)
}

/// Warmup + median-of-R wall-clock nanoseconds for one closure.
fn median_ns<T>(warmup: usize, rounds: usize, mut f: impl FnMut() -> T) -> u64 {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<u64> = (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One timed engine configuration on one dataset.
struct CaseResult {
    engine: String,
    hybrid_ns: u64,
    baseline_ns: u64,
}

fn run_dataset(
    name: &str,
    graph: &CsrGraph,
    args: &Args,
) -> (Vec<CaseResult>, /* hub stats */ (usize, usize, u64)) {
    // Baseline representation: exactly what shipped before this subsystem.
    let plain = graph.with_hybrid_config(&HybridConfig::disabled());
    let legacy = KernelParams::legacy();
    // Hybrid representation: degree-relabeled twin with auto hub rows.
    let t0 = Instant::now();
    let relab = Relabeling::degree_descending(graph);
    let rg = relab.apply(graph);
    let prep_ns = t0.elapsed().as_nanos() as u64;

    // Correctness guard before timing anything.
    let base_scores = compute_all_with(&plain, &legacy).0;
    let hybrid_scores = relab.restore_scores(&compute_all_with(&rg, &KernelParams::new()).0);
    for (v, (a, b)) in base_scores.iter().zip(&hybrid_scores).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
            "{name}: hybrid CB({v}) = {b} diverges from baseline {a}"
        );
    }

    let w = args.warmup;
    let r = args.rounds;
    let mut cases = vec![CaseResult {
        engine: "compute_all".into(),
        hybrid_ns: median_ns(w, r, || compute_all_with(&rg, &KernelParams::new())),
        baseline_ns: median_ns(w, r, || compute_all_with(&plain, &legacy)),
    }];
    let params = OptParams { theta: 1.05 };
    cases.push(CaseResult {
        engine: format!("opt_search(theta=1.05,k={})", args.k),
        hybrid_ns: median_ns(w, r, || opt_bsearch(&rg, args.k, params)),
        baseline_ns: median_ns(w, r, || opt_bsearch(&plain, args.k, params)),
    });
    for threads in [1usize, 2, 4] {
        cases.push(CaseResult {
            engine: format!("edge_pebw(t={threads})"),
            hybrid_ns: median_ns(w, r, || edge_pebw(&rg, threads)),
            baseline_ns: median_ns(w, r, || edge_pebw(&plain, threads)),
        });
    }
    let hub_stats = (rg.hub_count(), rg.hub_threshold().unwrap_or(0), prep_ns);
    (cases, hub_stats)
}

fn run(args: &Args) {
    let datasets = standins(args.scale);
    let mut case_rows: Vec<Json> = Vec::new();
    for d in &datasets {
        eprintln!(
            "perf: {} (n={}, m={}) ...",
            d.name,
            d.graph.n(),
            d.graph.m()
        );
        let (cases, (hubs, threshold, prep_ns)) = run_dataset(d.name, &d.graph, args);
        for c in &cases {
            let speedup = c.baseline_ns as f64 / (c.hybrid_ns as f64).max(1.0);
            eprintln!(
                "  {:<28} hybrid {:>12} ns   baseline {:>12} ns   {:.2}x",
                c.engine, c.hybrid_ns, c.baseline_ns, speedup
            );
            case_rows.push(Json::Obj(vec![
                ("dataset".into(), Json::Str(d.name.into())),
                ("engine".into(), Json::Str(c.engine.clone())),
                ("n".into(), Json::Num(d.graph.n() as f64)),
                ("m".into(), Json::Num(d.graph.m() as f64)),
                ("hubs".into(), Json::Num(hubs as f64)),
                ("hub_threshold".into(), Json::Num(threshold as f64)),
                ("prep_ns".into(), Json::Num(prep_ns as f64)),
                ("median_ns".into(), Json::Num(c.hybrid_ns as f64)),
                ("baseline_median_ns".into(), Json::Num(c.baseline_ns as f64)),
                (
                    "speedup".into(),
                    Json::Num((speedup * 1000.0).round() / 1000.0),
                ),
            ]));
        }
    }
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("scale".into(), Json::Num(args.scale)),
        ("rounds".into(), Json::Num(args.rounds as f64)),
        ("warmup".into(), Json::Num(args.warmup as f64)),
        ("k".into(), Json::Num(args.k as f64)),
        (
            "baseline".into(),
            Json::Str("pre-hybrid kernels: bitmap-free CSR, original ids, merge/gallop".into()),
        ),
        (
            "hybrid".into(),
            Json::Str("degree-relabeled twin, auto hub-bitmap rows, adaptive dispatch".into()),
        ),
        ("cases".into(), Json::Arr(case_rows)),
    ]);
    let mut text = doc.pretty();
    text.push('\n');
    std::fs::write(&args.out, text).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);
}

/// Schema check for CI: the file parses, carries the expected schema tag,
/// and every case row has the mandatory fields with sane types. No timing
/// assertions — machines differ; the trajectory comparison is a human /
/// reviewer concern.
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = Json::parse(&text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema tag")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    for field in ["scale", "rounds", "warmup", "k"] {
        doc.get(field)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric field {field:?}"))?;
    }
    let cases = doc
        .get("cases")
        .and_then(Json::as_arr)
        .ok_or("missing cases array")?;
    if cases.is_empty() {
        return Err("cases array is empty".into());
    }
    let mut datasets = std::collections::BTreeSet::new();
    let mut engines = std::collections::BTreeSet::new();
    for (i, case) in cases.iter().enumerate() {
        let field = |name: &str| {
            case.get(name)
                .ok_or_else(|| format!("case {i}: missing field {name:?}"))
        };
        datasets.insert(
            field("dataset")?
                .as_str()
                .ok_or_else(|| format!("case {i}: dataset not a string"))?
                .to_string(),
        );
        engines.insert(
            field("engine")?
                .as_str()
                .ok_or_else(|| format!("case {i}: engine not a string"))?
                .to_string(),
        );
        for name in ["median_ns", "baseline_median_ns", "speedup"] {
            let x = field(name)?
                .as_num()
                .ok_or_else(|| format!("case {i}: {name} not a number"))?;
            if !(x.is_finite() && x > 0.0) {
                return Err(format!("case {i}: {name} = {x} is not a positive number"));
            }
        }
    }
    if datasets.len() < 5 {
        return Err(format!(
            "only {} datasets covered, expected 5",
            datasets.len()
        ));
    }
    if engines.len() < 5 {
        return Err(format!(
            "only {} engine configs covered, expected ≥ 5",
            engines.len()
        ));
    }
    println!(
        "{path}: ok ({} cases, {} datasets × {} engines)",
        cases.len(),
        datasets.len(),
        engines.len()
    );
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: perf [--scale S] [--rounds R] [--warmup W] [--k K] \
                 [--out PATH] | --validate PATH"
            );
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.validate {
        if let Err(e) = validate(path) {
            eprintln!("{path}: INVALID: {e}");
            std::process::exit(1);
        }
        return;
    }
    run(&args);
}
