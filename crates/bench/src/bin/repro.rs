//! Experiment reproduction driver: one subcommand per table/figure of the
//! paper's evaluation (Section VI). Prints the same rows/series the paper
//! reports, on the synthetic dataset stand-ins (DESIGN.md §5).
//!
//! ```text
//! cargo run --release -p egobtw-bench --bin repro -- <command> [--scale S] [--k K]
//!
//! commands:
//!   datasets   Table I     dataset statistics
//!   exp1       Fig. 6 + Table II   BaseBSearch vs OptBSearch, varying k
//!   exp2       Fig. 7      OptBSearch vs the gradient ratio θ
//!   exp3       Fig. 8      update maintenance: Local vs Lazy, insert/delete
//!   exp4       Fig. 9      scalability on edge/vertex samples
//!   exp5       Fig. 10     parallel runtime and speedup, varying threads
//!   exp6       Fig. 11     TopBW vs TopEBW: runtime and overlap
//!   exp7       Fig. 12 + Tables III/IV   case study on DB/IR stand-ins
//!   ablate     (extra)     design-choice ablations
//!   all        everything above
//! ```
//!
//! `--scale` multiplies dataset sizes (default 1.0; use 0.1–0.3 for a
//! quick pass). Measured outputs are recorded in EXPERIMENTS.md.

use egobtw_baseline::{overlap_fraction, top_bw};
use egobtw_bench::{case_study, ms, print_table, standins, time, Dataset};
use egobtw_core::{base_bsearch, compute_all, compute_all_naive, opt_bsearch, OptParams};
use egobtw_dynamic::{LazyTopK, LocalIndex};
use egobtw_gen::sample::{edge_sample, vertex_sample};
use egobtw_graph::VertexId;
use egobtw_parallel::{edge_pebw, vertex_pebw};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let scale = flag_value(&args, "--scale").unwrap_or(1.0);
    let k_default = flag_value(&args, "--k").map(|k| k as usize).unwrap_or(500);

    match cmd {
        "datasets" => datasets(scale),
        "exp1" => exp1(scale),
        "exp2" => exp2(scale),
        "exp3" => exp3(scale, k_default),
        "exp4" => exp4(scale),
        "exp5" => exp5(scale),
        "exp6" => exp6(scale),
        "exp7" => exp7(scale),
        "ablate" => ablate(scale),
        "all" => {
            datasets(scale);
            exp1(scale);
            exp2(scale);
            exp3(scale, k_default);
            exp4(scale);
            exp5(scale);
            exp6(scale);
            exp7(scale);
            ablate(scale);
        }
        _ => {
            eprintln!(
                "usage: repro <datasets|exp1..exp7|ablate|all> [--scale S] [--k K]\n\
                 see the module docs at the top of repro.rs"
            );
            std::process::exit(2);
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

// ---------------------------------------------------------------- Table I

fn datasets(scale: f64) {
    banner(&format!("Table I: datasets (stand-ins, scale={scale})"));
    let rows: Vec<Vec<String>> = standins(scale)
        .iter()
        .map(|d| {
            vec![
                d.name.to_string(),
                d.graph.n().to_string(),
                d.graph.m().to_string(),
                d.graph.max_degree().to_string(),
                egobtw_graph::triangle::count_triangles(&d.graph).to_string(),
                d.substitutes.to_string(),
            ]
        })
        .collect();
    print_table(
        &["dataset", "n", "m", "dmax", "triangles", "substitutes"],
        &rows,
    );
}

// -------------------------------------------------- Fig. 6 + Table II

fn exp1(scale: f64) {
    banner("Exp-1 (Fig. 6): BaseBSearch vs OptBSearch runtime, varying k");
    let ks = [50usize, 100, 200, 500, 1000, 2000];
    let sets = standins(scale);
    let mut fig6: Vec<Vec<String>> = Vec::new();
    let mut table2: Vec<Vec<String>> = Vec::new();
    for d in &sets {
        for &k in &ks {
            let (rb, tb) = time(|| base_bsearch(&d.graph, k));
            let (ro, to) = time(|| opt_bsearch(&d.graph, k, OptParams::default()));
            let speedup = tb.as_secs_f64() / to.as_secs_f64().max(1e-12);
            fig6.push(vec![
                d.name.into(),
                k.to_string(),
                ms(tb),
                ms(to),
                format!("{speedup:.1}x"),
            ]);
            if matches!(k, 500 | 1000 | 2000) {
                table2.push(vec![
                    d.name.into(),
                    k.to_string(),
                    rb.stats.exact_computations.to_string(),
                    ro.stats.exact_computations.to_string(),
                ]);
            }
            // Sanity: identical value sequences.
            for (a, b) in rb.entries.iter().zip(&ro.entries) {
                assert!((a.1 - b.1).abs() < 1e-9, "base/opt disagree");
            }
        }
    }
    print_table(
        &["dataset", "k", "BaseBS (ms)", "OptBS (ms)", "speedup"],
        &fig6,
    );
    banner("Table II: #vertices computed exactly");
    print_table(&["dataset", "k", "BaseBS", "OptBS"], &table2);
}

// ------------------------------------------------------------- Fig. 7

fn exp2(scale: f64) {
    banner("Exp-2 (Fig. 7): OptBSearch vs gradient ratio θ (k=500)");
    let thetas = [1.05, 1.10, 1.15, 1.20, 1.25, 1.30];
    let sets = standins(scale);
    let mut rows = Vec::new();
    for d in sets
        .iter()
        .filter(|d| d.name == "wikitalk-like" || d.name == "livejournal-like")
    {
        for &theta in &thetas {
            let (r, t) = time(|| opt_bsearch(&d.graph, 500, OptParams { theta }));
            rows.push(vec![
                d.name.into(),
                format!("{theta:.2}"),
                ms(t),
                r.stats.exact_computations.to_string(),
                r.stats.bound_refreshes.to_string(),
            ]);
        }
    }
    print_table(
        &["dataset", "theta", "OptBS (ms)", "exact", "bound refreshes"],
        &rows,
    );
}

// ------------------------------------------------------------- Fig. 8

/// Undirected edge list, as produced by [`pick_updates`].
type EdgeList = Vec<(VertexId, VertexId)>;

/// Picks `count` random insertable non-edges and deletable edges.
fn pick_updates(g: &egobtw_graph::CsrGraph, count: usize, seed: u64) -> (EdgeList, EdgeList) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.n() as VertexId;
    let mut inserts = Vec::with_capacity(count);
    while inserts.len() < count {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v && !g.has_edge(u, v) {
            inserts.push((u, v));
        }
    }
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let deletes = (0..count)
        .map(|_| edges[rng.random_range(0..edges.len())])
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    (inserts, deletes)
}

fn exp3(scale: f64, k: usize) {
    banner(&format!(
        "Exp-3 (Fig. 8): maintenance — 1000 random updates, k={k}"
    ));
    let count = 1000;
    let mut rows = Vec::new();
    for d in &standins(scale) {
        let (inserts, deletes) = pick_updates(&d.graph, count, 0xF1B8);

        // Inserts.
        let mut local = LocalIndex::new(&d.graph);
        let (_, t_li) = time(|| {
            for &(u, v) in &inserts {
                local.insert_edge(u, v);
            }
        });
        let mut lazy = LazyTopK::new(&d.graph, k);
        let (_, t_zi) = time(|| {
            for &(u, v) in &inserts {
                lazy.insert_edge(u, v);
            }
        });

        // Deletes (from the original graph).
        let mut local = LocalIndex::new(&d.graph);
        let (_, t_ld) = time(|| {
            for &(u, v) in &deletes {
                local.delete_edge(u, v);
            }
        });
        let mut lazy = LazyTopK::new(&d.graph, k);
        let (_, t_zd) = time(|| {
            for &(u, v) in &deletes {
                lazy.delete_edge(u, v);
            }
        });

        let per =
            |t: std::time::Duration, c: usize| format!("{:.4}", t.as_secs_f64() * 1e3 / c as f64);
        rows.push(vec![
            d.name.into(),
            per(t_li, inserts.len()),
            per(t_zi, inserts.len()),
            per(t_ld, deletes.len()),
            per(t_zd, deletes.len()),
        ]);
    }
    print_table(
        &[
            "dataset",
            "LocalInsert (ms/op)",
            "LazyInsert (ms/op)",
            "LocalDelete (ms/op)",
            "LazyDelete (ms/op)",
        ],
        &rows,
    );
}

// ------------------------------------------------------------- Fig. 9

fn exp4(scale: f64) {
    banner("Exp-4 (Fig. 9): scalability on livejournal-like (k=500)");
    let lj = standins(scale)
        .into_iter()
        .find(|d| d.name == "livejournal-like")
        .expect("registry contains livejournal-like");
    let fracs = [0.2, 0.4, 0.6, 0.8, 1.0];
    let mut rows = Vec::new();
    for &f in &fracs {
        let sub = edge_sample(&lj.graph, f, 0xE49);
        let (_, tb) = time(|| base_bsearch(&sub, 500));
        let (_, to) = time(|| opt_bsearch(&sub, 500, OptParams::default()));
        rows.push(vec![
            format!("{:.0}% edges", f * 100.0),
            sub.m().to_string(),
            ms(tb),
            ms(to),
        ]);
    }
    for &f in &fracs {
        let (sub, _) = vertex_sample(&lj.graph, f, 0xE49);
        let (_, tb) = time(|| base_bsearch(&sub, 500));
        let (_, to) = time(|| opt_bsearch(&sub, 500, OptParams::default()));
        rows.push(vec![
            format!("{:.0}% vertices", f * 100.0),
            sub.m().to_string(),
            ms(tb),
            ms(to),
        ]);
    }
    print_table(&["sample", "m", "BaseBS (ms)", "OptBS (ms)"], &rows);
}

// ------------------------------------------------------------ Fig. 10

fn exp5(scale: f64) {
    banner("Exp-5 (Fig. 10): parallel all-vertex computation on livejournal-like");
    let lj = standins(scale)
        .into_iter()
        .find(|d| d.name == "livejournal-like")
        .expect("registry contains livejournal-like");
    let (_, t_seq) = time(|| compute_all(&lj.graph));
    println!("sequential edge-centric baseline: {} ms", ms(t_seq));
    let mut rows = Vec::new();
    for &t in &[1usize, 4, 8, 12, 16] {
        let (_, tv) = time(|| vertex_pebw(&lj.graph, t));
        let (_, te) = time(|| edge_pebw(&lj.graph, t));
        rows.push(vec![
            t.to_string(),
            ms(tv),
            format!("{:.1}", t_seq.as_secs_f64() / tv.as_secs_f64().max(1e-12)),
            ms(te),
            format!("{:.1}", t_seq.as_secs_f64() / te.as_secs_f64().max(1e-12)),
        ]);
    }
    print_table(
        &[
            "threads",
            "VertexPEBW (ms)",
            "speedup",
            "EdgePEBW (ms)",
            "speedup",
        ],
        &rows,
    );
}

// ------------------------------------------------------------ Fig. 11

fn run_bw_vs_ebw(d: &Dataset, ks: &[usize], threads: usize) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    // Betweenness is k-independent; compute once.
    let (bc, t_bw_all) = time(|| egobtw_baseline::betweenness_parallel(&d.graph, threads));
    let mut ranked: Vec<VertexId> = (0..d.graph.n() as VertexId).collect();
    ranked.sort_by(|&a, &b| bc[b as usize].total_cmp(&bc[a as usize]).then(a.cmp(&b)));
    for &k in ks {
        let (ebw, t_ebw) = time(|| opt_bsearch(&d.graph, k, OptParams::default()));
        let ev: Vec<VertexId> = ebw.entries.iter().map(|e| e.0).collect();
        let bv: Vec<VertexId> = ranked.iter().copied().take(k).collect();
        rows.push(vec![
            d.name.into(),
            k.to_string(),
            ms(t_bw_all),
            ms(t_ebw),
            format!(
                "{:.0}x",
                t_bw_all.as_secs_f64() / t_ebw.as_secs_f64().max(1e-12)
            ),
            format!("{:.0}%", 100.0 * overlap_fraction(&bv, &ev)),
        ]);
    }
    rows
}

fn exp6(scale: f64) {
    let threads = std::thread::available_parallelism().map_or(8, |p| p.get());
    banner(&format!(
        "Exp-6 (Fig. 11): TopBW (Brandes × {threads} threads) vs TopEBW"
    ));
    let ks = [50usize, 100, 200, 500, 1000, 2000];
    let mut rows = Vec::new();
    for d in standins(scale)
        .into_iter()
        .filter(|d| d.name == "wikitalk-like" || d.name == "pokec-like")
    {
        rows.extend(run_bw_vs_ebw(&d, &ks, threads));
    }
    print_table(
        &[
            "dataset",
            "k",
            "TopBW (ms)",
            "TopEBW (ms)",
            "speedup",
            "overlap",
        ],
        &rows,
    );
}

// ------------------------------------- Fig. 12 + Tables III / IV

fn exp7(scale: f64) {
    let threads = std::thread::available_parallelism().map_or(8, |p| p.get());
    banner("Exp-7 (Fig. 12): case study on DB-like / IR-like collaboration graphs");
    let ks = [10usize, 50, 100, 150, 200, 250];
    let sets = case_study(scale);
    let mut rows = Vec::new();
    for d in &sets {
        println!(
            "{}: n={} m={} ({})",
            d.name,
            d.graph.n(),
            d.graph.m(),
            d.substitutes
        );
        rows.extend(run_bw_vs_ebw(d, &ks, threads));
    }
    print_table(
        &[
            "dataset",
            "k",
            "TopBW (ms)",
            "TopEBW (ms)",
            "speedup",
            "overlap",
        ],
        &rows,
    );

    banner("Tables III/IV: top-10 authors, EBW vs BW side by side");
    for d in &sets {
        let ebw = opt_bsearch(&d.graph, 10, OptParams::default());
        let bw = top_bw(&d.graph, 10, threads);
        let in_bw: Vec<VertexId> = bw.iter().map(|e| e.0).collect();
        let in_ebw: Vec<VertexId> = ebw.entries.iter().map(|e| e.0).collect();
        println!(
            "\n{} (authors appearing in both lists are starred):",
            d.name
        );
        let rows: Vec<Vec<String>> = (0..10)
            .map(|i| {
                let (ve, cbe) = ebw.entries[i];
                let (vb, btb) = bw[i];
                vec![
                    format!("{}author-{ve}", if in_bw.contains(&ve) { "*" } else { " " }),
                    d.graph.degree(ve).to_string(),
                    format!("{cbe:.1}"),
                    format!(
                        "{}author-{vb}",
                        if in_ebw.contains(&vb) { "*" } else { " " }
                    ),
                    d.graph.degree(vb).to_string(),
                    format!("{btb:.1}"),
                ]
            })
            .collect();
        print_table(&["Top-10 EBW", "d", "CB", "Top-10 BW", "d", "BT"], &rows);
    }
}

// ------------------------------------------------------------ ablations

fn ablate(scale: f64) {
    banner("Ablations: design choices (DESIGN.md §7)");
    let d = standins(scale)
        .into_iter()
        .find(|d| d.name == "dblp-like")
        .expect("registry contains dblp-like");
    let g = &d.graph;

    // (a) shared-work engine vs per-ego straightforward algorithm.
    let (_, t_engine) = time(|| compute_all(g));
    let (_, t_naive) = time(|| compute_all_naive(g));
    // (b) ordered-engine full sweep (BaseBSearch with k = n): measures the
    //     cn-list bookkeeping overhead the edge-centric pass avoids.
    let (_, t_ordered) = time(|| base_bsearch(g, g.n()));
    print_table(
        &["variant", "all-vertices (ms)"],
        &[
            vec!["edge-centric shared engine".into(), ms(t_engine)],
            vec!["ordered engine (BaseBSearch k=n)".into(), ms(t_ordered)],
            vec!["per-ego straightforward".into(), ms(t_naive)],
        ],
    );
    println!(
        "\n(intersection-kernel and edge-membership ablations live in the\n\
         criterion bench `micro`: cargo bench -p egobtw-bench --bench micro)"
    );
}
