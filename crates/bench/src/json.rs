//! Dependency-free JSON value, writer, and recursive-descent parser.
//!
//! The perf harness (`bench/src/bin/perf.rs`) emits `BENCH_topk.json` and
//! CI re-reads it for a schema check; this environment has no registry
//! access, so instead of `serde_json` we carry the ~150 lines of JSON we
//! actually need. Numbers are `f64` (exact for integers below 2⁵³ —
//! nanosecond medians fit for ~104 days); strings support the standard
//! escapes plus `\uXXXX` for BMP code points.

use std::fmt;

/// A JSON document. Object keys keep insertion order so emitted files are
/// stable and diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see module docs for integer precision).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl Json {
    /// Pretty-prints with two-space indentation (what the perf harness
    /// writes, so `BENCH_topk.json` diffs line by line).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out
    }

    fn pretty_into(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, levels: usize| {
            for _ in 0..levels {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.pretty_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    out.push_str(&Json::Str(k.clone()).to_string());
                    out.push_str(": ");
                    v.pretty_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected {token:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, "\"")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&byte) => {
                // Consume one UTF-8 scalar: sequence length from the lead
                // byte, validity of just that slice re-checked so the cost
                // stays linear in the string length.
                let len = match byte {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|_| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("x/v1".into())),
            ("scale".into(), Json::Num(0.25)),
            ("n".into(), Json::Num(123_456_789.0)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "cases".into(),
                Json::Arr(vec![
                    Json::Obj(vec![("median_ns".into(), Json::Num(1.5e9))]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        for text in [doc.to_string(), doc.pretty()] {
            let parsed = Json::parse(&text).expect("roundtrip parse");
            assert_eq!(parsed, doc, "via {text}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "a\"b\\c\ndAé"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndAé"));
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": [1, 2.5], "b": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nul",
            "\"unterminated",
            "{} extra",
            "[01x]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_print_exactly() {
        assert_eq!(Json::Num(1_234_567_891_234.0).to_string(), "1234567891234");
        assert_eq!(Json::Num(0.125).to_string(), "0.125");
    }
}
