//! Criterion micro-version of Exp-5 (Fig. 10): VertexPEBW vs EdgePEBW
//! across thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egobtw_parallel::{edge_pebw, vertex_pebw};

fn bench_parallel(c: &mut Criterion) {
    let g = egobtw_gen::barabasi_albert(5_000, 6, 0xBA11);
    let mut group = c.benchmark_group("parallel_pebw");
    group.sample_size(10);
    for t in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("VertexPEBW", t), &t, |b, &t| {
            b.iter(|| vertex_pebw(&g, t))
        });
        group.bench_with_input(BenchmarkId::new("EdgePEBW", t), &t, |b, &t| {
            b.iter(|| edge_pebw(&g, t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
