//! Criterion micro-version of Exp-3 (Fig. 8): per-update cost of the
//! exact local maintainer vs the lazy top-k maintainer.

use criterion::{criterion_group, criterion_main, Criterion};
use egobtw_dynamic::{LazyTopK, LocalIndex};
use egobtw_graph::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn updates(n: usize, count: usize, g: &egobtw_graph::CsrGraph) -> Vec<(VertexId, VertexId)> {
    let mut rng = StdRng::seed_from_u64(0xF8);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let u = rng.random_range(0..n as VertexId);
        let v = rng.random_range(0..n as VertexId);
        if u != v && !g.has_edge(u, v) {
            out.push((u, v));
        }
    }
    out
}

fn bench_updates(c: &mut Criterion) {
    let n = 2_000;
    let g = egobtw_gen::barabasi_albert(n, 4, 0xF8);
    let ops = updates(n, 64, &g);
    let mut group = c.benchmark_group("updates");
    group.sample_size(10);

    group.bench_function("local_insert_delete_cycle", |b| {
        let mut idx = LocalIndex::new(&g);
        b.iter(|| {
            for &(u, v) in &ops {
                idx.insert_edge(u, v);
            }
            for &(u, v) in &ops {
                idx.delete_edge(u, v);
            }
        })
    });

    group.bench_function("lazy_insert_delete_cycle_k50", |b| {
        let mut lazy = LazyTopK::new(&g, 50);
        b.iter(|| {
            for &(u, v) in &ops {
                lazy.insert_edge(u, v);
            }
            for &(u, v) in &ops {
                lazy.delete_edge(u, v);
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
