//! Kernel ablations (DESIGN.md §7): intersection strategy, edge
//! membership, pair-key hashing, and triangle enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egobtw_graph::intersect::{
    bitmap_bitmap_intersection_count, gallop_intersection_count, intersection_count,
    intersection_count_with, merge_intersection_count, pack_bitmap,
    slice_bitmap_intersection_count, KernelParams,
};
use egobtw_graph::{pack_pair, CsrGraph, EdgeSet, HybridConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sorted_random(len: usize, universe: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = std::collections::BTreeSet::new();
    while s.len() < len {
        s.insert(rng.random_range(0..universe));
    }
    s.into_iter().collect()
}

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection");
    // Balanced and skewed length ratios; skew is where galloping pays.
    for (la, lb) in [(1_000usize, 1_000usize), (32, 10_000), (4, 50_000)] {
        let a = sorted_random(la, 1 << 20, 1);
        let b = sorted_random(lb, 1 << 20, 2);
        let id = format!("{la}x{lb}");
        group.bench_with_input(BenchmarkId::new("merge", &id), &(), |bench, _| {
            bench.iter(|| merge_intersection_count(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("gallop", &id), &(), |bench, _| {
            bench.iter(|| gallop_intersection_count(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("adaptive", &id), &(), |bench, _| {
            bench.iter(|| intersection_count(&a, &b))
        });
    }
    group.finish();
}

/// The hybrid kernels against the slice kernels, on hub-shaped inputs: a
/// short probe set vs. a dense hub row over a 2²⁰ universe (slice×bitmap),
/// and two hub rows (bitmap×bitmap AND+popcount).
fn bench_bitmap_kernels(c: &mut Criterion) {
    let universe = 1u32 << 20;
    let words = (universe as usize).div_ceil(64);
    let hub_a = sorted_random(20_000, universe, 11);
    let hub_b = sorted_random(16_000, universe, 12);
    let row_a = pack_bitmap(&hub_a, words);
    let row_b = pack_bitmap(&hub_b, words);
    let mut group = c.benchmark_group("intersection_bitmap");
    for probe_len in [8usize, 64, 1_024] {
        let probe = sorted_random(probe_len, universe, 13);
        let id = format!("{probe_len}x{}", hub_a.len());
        group.bench_with_input(BenchmarkId::new("merge", &id), &(), |bench, _| {
            bench.iter(|| merge_intersection_count(&probe, &hub_a))
        });
        group.bench_with_input(BenchmarkId::new("gallop", &id), &(), |bench, _| {
            bench.iter(|| gallop_intersection_count(&probe, &hub_a))
        });
        group.bench_with_input(BenchmarkId::new("slice_bitmap", &id), &(), |bench, _| {
            bench.iter(|| slice_bitmap_intersection_count(&probe, &row_a))
        });
    }
    let id = format!("{}x{}", hub_a.len(), hub_b.len());
    group.bench_with_input(BenchmarkId::new("merge", &id), &(), |bench, _| {
        bench.iter(|| merge_intersection_count(&hub_a, &hub_b))
    });
    group.bench_with_input(BenchmarkId::new("bitmap_bitmap", &id), &(), |bench, _| {
        bench.iter(|| bitmap_bitmap_intersection_count(&row_a, &row_b))
    });
    group.finish();
}

/// Sweeps `KernelParams::gallop_ratio` on a mid-skew shape (where the
/// merge/gallop crossover actually sits) — the measurement behind the
/// default in `KernelParams::new`.
fn bench_gallop_ratio_sweep(c: &mut Criterion) {
    let a = sorted_random(64, 1 << 20, 21);
    let b = sorted_random(4_096, 1 << 20, 22);
    let mut group = c.benchmark_group("gallop_ratio_64x4096");
    for ratio in [1usize, 8, 16, 32, 64, 128] {
        let params = KernelParams {
            gallop_ratio: ratio,
            ..KernelParams::new()
        };
        group.bench_with_input(BenchmarkId::new("ratio", ratio), &(), |bench, _| {
            bench.iter(|| intersection_count_with(&a, &b, &params))
        });
    }
    group.finish();
}

/// End-to-end hybrid dispatch on a power-law graph: every edge's common
/// neighborhood, hub rows on vs. off.
fn bench_hybrid_graph_dispatch(c: &mut Criterion) {
    let hybrid = egobtw_gen::barabasi_albert(10_000, 8, 5);
    let plain = hybrid.with_hybrid_config(&HybridConfig::disabled());
    let edges: Vec<(u32, u32)> = hybrid.edges().collect();
    let mut group = c.benchmark_group("common_neighbors_all_edges_10k_ba");
    group.bench_function("hybrid_auto_hubs", |b| {
        b.iter(|| {
            edges
                .iter()
                .map(|&(u, v)| hybrid.common_neighbor_count(u, v))
                .sum::<usize>()
        })
    });
    group.bench_function("plain_slices", |b| {
        b.iter(|| {
            edges
                .iter()
                .map(|&(u, v)| plain.common_neighbor_count(u, v))
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_edge_membership(c: &mut Criterion) {
    let g = egobtw_gen::barabasi_albert(10_000, 8, 3);
    let es = EdgeSet::from_graph(&g);
    let mut rng = StdRng::seed_from_u64(9);
    let queries: Vec<(u32, u32)> = (0..4_096)
        .map(|_| {
            (
                rng.random_range(0..10_000u32),
                rng.random_range(0..10_000u32),
            )
        })
        .collect();
    let mut group = c.benchmark_group("edge_membership");
    group.bench_function("hash_set", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter(|&&(u, v)| u != v && es.contains(u, v))
                .count()
        })
    });
    group.bench_function("csr_binary_search", |b| {
        b.iter(|| queries.iter().filter(|&&(u, v)| g.has_edge(u, v)).count())
    });
    group.finish();
}

fn bench_pair_hashing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let pairs: Vec<(u32, u32)> = (0..10_000)
        .map(|_| {
            (
                rng.random_range(0..1u32 << 20),
                rng.random_range(0..1u32 << 20),
            )
        })
        .filter(|(a, b)| a != b)
        .collect();
    let mut group = c.benchmark_group("pair_map_insert_10k");
    group.bench_function("fx_packed_u64", |b| {
        b.iter(|| {
            let mut m: egobtw_graph::FxHashMap<u64, u32> = egobtw_graph::FxHashMap::default();
            for &(u, v) in &pairs {
                *m.entry(pack_pair(u, v)).or_insert(0) += 1;
            }
            m.len()
        })
    });
    group.bench_function("siphash_tuple", |b| {
        b.iter(|| {
            let mut m: std::collections::HashMap<(u32, u32), u32> =
                std::collections::HashMap::new();
            for &(u, v) in &pairs {
                let key = (u.min(v), u.max(v));
                *m.entry(key).or_insert(0) += 1;
            }
            m.len()
        })
    });
    group.bench_function("btreemap_packed_u64", |b| {
        b.iter(|| {
            let mut m: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
            for &(u, v) in &pairs {
                *m.entry(pack_pair(u, v)).or_insert(0) += 1;
            }
            m.len()
        })
    });
    group.finish();
}

fn bench_triangles(c: &mut Criterion) {
    let g: CsrGraph = egobtw_gen::barabasi_albert(20_000, 6, 7);
    c.bench_function("triangle_count_20k_ba", |b| {
        b.iter(|| egobtw_graph::triangle::count_triangles(&g))
    });
}

criterion_group!(
    benches,
    bench_intersection,
    bench_bitmap_kernels,
    bench_gallop_ratio_sweep,
    bench_hybrid_graph_dispatch,
    bench_edge_membership,
    bench_pair_hashing,
    bench_triangles
);
criterion_main!(benches);
