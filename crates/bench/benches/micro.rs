//! Kernel ablations (DESIGN.md §7): intersection strategy, edge
//! membership, pair-key hashing, and triangle enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egobtw_graph::intersect::{
    gallop_intersection_count, intersection_count, merge_intersection_count,
};
use egobtw_graph::{pack_pair, CsrGraph, EdgeSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sorted_random(len: usize, universe: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = std::collections::BTreeSet::new();
    while s.len() < len {
        s.insert(rng.random_range(0..universe));
    }
    s.into_iter().collect()
}

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection");
    // Balanced and skewed length ratios; skew is where galloping pays.
    for (la, lb) in [(1_000usize, 1_000usize), (32, 10_000), (4, 50_000)] {
        let a = sorted_random(la, 1 << 20, 1);
        let b = sorted_random(lb, 1 << 20, 2);
        let id = format!("{la}x{lb}");
        group.bench_with_input(BenchmarkId::new("merge", &id), &(), |bench, _| {
            bench.iter(|| merge_intersection_count(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("gallop", &id), &(), |bench, _| {
            bench.iter(|| gallop_intersection_count(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("adaptive", &id), &(), |bench, _| {
            bench.iter(|| intersection_count(&a, &b))
        });
    }
    group.finish();
}

fn bench_edge_membership(c: &mut Criterion) {
    let g = egobtw_gen::barabasi_albert(10_000, 8, 3);
    let es = EdgeSet::from_graph(&g);
    let mut rng = StdRng::seed_from_u64(9);
    let queries: Vec<(u32, u32)> = (0..4_096)
        .map(|_| {
            (
                rng.random_range(0..10_000u32),
                rng.random_range(0..10_000u32),
            )
        })
        .collect();
    let mut group = c.benchmark_group("edge_membership");
    group.bench_function("hash_set", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter(|&&(u, v)| u != v && es.contains(u, v))
                .count()
        })
    });
    group.bench_function("csr_binary_search", |b| {
        b.iter(|| queries.iter().filter(|&&(u, v)| g.has_edge(u, v)).count())
    });
    group.finish();
}

fn bench_pair_hashing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let pairs: Vec<(u32, u32)> = (0..10_000)
        .map(|_| {
            (
                rng.random_range(0..1u32 << 20),
                rng.random_range(0..1u32 << 20),
            )
        })
        .filter(|(a, b)| a != b)
        .collect();
    let mut group = c.benchmark_group("pair_map_insert_10k");
    group.bench_function("fx_packed_u64", |b| {
        b.iter(|| {
            let mut m: egobtw_graph::FxHashMap<u64, u32> = egobtw_graph::FxHashMap::default();
            for &(u, v) in &pairs {
                *m.entry(pack_pair(u, v)).or_insert(0) += 1;
            }
            m.len()
        })
    });
    group.bench_function("siphash_tuple", |b| {
        b.iter(|| {
            let mut m: std::collections::HashMap<(u32, u32), u32> =
                std::collections::HashMap::new();
            for &(u, v) in &pairs {
                let key = (u.min(v), u.max(v));
                *m.entry(key).or_insert(0) += 1;
            }
            m.len()
        })
    });
    group.bench_function("btreemap_packed_u64", |b| {
        b.iter(|| {
            let mut m: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
            for &(u, v) in &pairs {
                *m.entry(pack_pair(u, v)).or_insert(0) += 1;
            }
            m.len()
        })
    });
    group.finish();
}

fn bench_triangles(c: &mut Criterion) {
    let g: CsrGraph = egobtw_gen::barabasi_albert(20_000, 6, 7);
    c.bench_function("triangle_count_20k_ba", |b| {
        b.iter(|| egobtw_graph::triangle::count_triangles(&g))
    });
}

criterion_group!(
    benches,
    bench_intersection,
    bench_edge_membership,
    bench_pair_hashing,
    bench_triangles
);
criterion_main!(benches);
