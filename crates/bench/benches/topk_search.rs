//! Criterion micro-version of Exp-1 (Fig. 6): BaseBSearch vs OptBSearch,
//! plus the all-vertices kernels, on a small BA social network so the
//! whole suite stays fast under `cargo bench --workspace`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egobtw_core::{base_bsearch, compute_all, compute_all_naive, opt_bsearch, OptParams};

fn bench_searches(c: &mut Criterion) {
    let g = egobtw_gen::barabasi_albert(2_000, 4, 0xBE);
    let mut group = c.benchmark_group("topk_search");
    group.sample_size(10);
    for k in [10usize, 50, 200] {
        group.bench_with_input(BenchmarkId::new("BaseBSearch", k), &k, |b, &k| {
            b.iter(|| base_bsearch(&g, k))
        });
        group.bench_with_input(BenchmarkId::new("OptBSearch", k), &k, |b, &k| {
            b.iter(|| opt_bsearch(&g, k, OptParams::default()))
        });
    }
    group.finish();
}

fn bench_all_vertices(c: &mut Criterion) {
    let g = egobtw_gen::barabasi_albert(2_000, 4, 0xBE);
    let mut group = c.benchmark_group("all_vertices");
    group.sample_size(10);
    group.bench_function("edge_centric_engine", |b| b.iter(|| compute_all(&g)));
    group.bench_function("straightforward_per_ego", |b| {
        b.iter(|| compute_all_naive(&g))
    });
    group.bench_function("ordered_engine_k_eq_n", |b| {
        b.iter(|| base_bsearch(&g, g.n()))
    });
    group.finish();
}

criterion_group!(benches, bench_searches, bench_all_vertices);
criterion_main!(benches);
