//! Criterion micro-version of Exp-6 (Fig. 11): top-k ego-betweenness vs
//! Brandes betweenness on the same graph — the orders-of-magnitude gap
//! that motivates the whole paper.

use criterion::{criterion_group, criterion_main, Criterion};
use egobtw_baseline::{betweenness, betweenness_parallel};
use egobtw_core::{opt_bsearch, OptParams};

fn bench_baseline(c: &mut Criterion) {
    let g = egobtw_gen::barabasi_albert(1_000, 4, 0xB4);
    let mut group = c.benchmark_group("bw_vs_ebw");
    group.sample_size(10);
    group.bench_function("TopEBW_k50", |b| {
        b.iter(|| opt_bsearch(&g, 50, OptParams::default()))
    });
    group.bench_function("Brandes_sequential", |b| b.iter(|| betweenness(&g)));
    group.bench_function("Brandes_4_threads", |b| {
        b.iter(|| betweenness_parallel(&g, 4))
    });
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
