//! Property tests for the empirical-Bernstein machinery behind
//! [`egobtw_core::approx`].
//!
//! The half-width `h(V, t, δ') = √(2·V·ln(3/δ')/t) + 3·ln(3/δ')/t` is the
//! entire statistical backbone of the approx engines: rejection,
//! resolution, and certification all reason through it. These tests pin
//! its analytic shape (monotonicity, variance behaviour, centering) and
//! then check the claim that actually matters — the intervals it yields
//! *cover* the true mean at the promised rate — by seeded Monte-Carlo
//! over bounded [0, 1] variables, judged with the same one-sided binomial
//! slack the conformance δ-gate uses.

use egobtw_core::{binomial_tail_ge, eb_half_width, round_delta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn half_width_is_monotone_nonincreasing_in_t() {
    for &variance in &[0.0, 1e-6, 0.01, 0.25] {
        for &delta in &[0.1, 0.01, 1e-4] {
            let mut prev = f64::INFINITY;
            for t in 1..=4096u64 {
                let h = eb_half_width(variance, t, delta);
                assert!(
                    h <= prev + 1e-15,
                    "h grew at t={t} (V={variance}, δ'={delta}): {prev} -> {h}"
                );
                assert!(h.is_finite() && h >= 0.0, "h={h} at t={t}");
                prev = h;
            }
        }
    }
}

#[test]
fn half_width_shrinks_with_variance_down_to_the_range_term() {
    for &t in &[4u64, 64, 1024] {
        for &delta in &[0.05f64, 1e-3] {
            let range_term = 3.0 * (3.0 / delta).ln() / t as f64;
            let mut prev = f64::INFINITY;
            for &variance in &[0.25, 0.1, 0.01, 1e-4, 0.0] {
                let h = eb_half_width(variance, t, delta);
                assert!(h <= prev, "h grew as variance fell (t={t})");
                assert!(
                    h >= range_term - 1e-15,
                    "h={h} undercut the range term {range_term}"
                );
                prev = h;
            }
            // At zero empirical variance only the range term remains.
            let h0 = eb_half_width(0.0, t, delta);
            assert!((h0 - range_term).abs() <= 1e-12 * range_term.max(1.0));
        }
    }
}

#[test]
fn interval_never_excludes_the_sample_mean() {
    // The CI is centered on the sample mean, so exclusion is exactly a
    // negative half-width; sweep a wide parameter grid to rule it out.
    for &variance in &[0.0, 1e-9, 0.3, 0.25f64] {
        for &t in &[1u64, 2, 7, 1000, 1 << 40] {
            for &delta in &[0.5, 1e-2, 1e-9] {
                let h = eb_half_width(variance, t, delta);
                assert!(
                    h >= 0.0 && h.is_finite(),
                    "degenerate half-width {h} (V={variance}, t={t}, δ'={delta})"
                );
                let mean = 0.37;
                assert!(mean - h <= mean && mean <= mean + h);
            }
        }
    }
}

#[test]
fn round_delta_budgets_telescope_within_delta() {
    // Σ_r δ/(n·r·(r+1)) over all rounds telescopes to δ/n per ego, i.e.
    // δ in total across n egos — the union bound the engine relies on.
    let (delta, n) = (0.01, 37usize);
    let spent: f64 = (1..=10_000u32).map(|r| round_delta(delta, n, r)).sum();
    assert!(
        spent * n as f64 <= delta + 1e-12,
        "budget overspent: {spent}"
    );
    assert!(
        spent * n as f64 >= delta * 0.99,
        "budget far from telescoping: {spent}"
    );
}

/// Monte-Carlo coverage: for bounded i.i.d. samples, the EB interval at
/// confidence δ' must contain the true mean in at least a 1−δ' fraction
/// of trials (up to binomial noise, judged at α = 10⁻³ like the δ-gate).
#[test]
fn monte_carlo_coverage_meets_one_minus_delta() {
    const TRIALS: u64 = 600;
    const T: u64 = 400;
    const DELTA: f64 = 0.05;
    const ALPHA: f64 = 1e-3;

    // Mixed-shape bounded variables with known means: Bernoulli(0.3),
    // Uniform[0,1], and a spiky 0.05/0.95 two-pointer.
    let cases: &[(&str, f64)] = &[("bernoulli", 0.3), ("uniform", 0.5), ("spiky", 0.14)];
    for &(shape, true_mean) in cases {
        let mut misses = 0u64;
        for trial in 0..TRIALS {
            let mut rng = StdRng::seed_from_u64(0xBE27_5E1D ^ (trial * 2 + 1));
            let mut sum = 0.0f64;
            let mut sum_sq = 0.0f64;
            for _ in 0..T {
                let x: f64 = match shape {
                    "bernoulli" => f64::from(u8::from(rng.random_bool(0.3))),
                    "uniform" => rng.random(),
                    // 0.95 w.p. 0.1, else 0.05: mean 0.14, high kurtosis.
                    _ => {
                        if rng.random_bool(0.1) {
                            0.95
                        } else {
                            0.05
                        }
                    }
                };
                sum += x;
                sum_sq += x * x;
            }
            let mean = sum / T as f64;
            let variance = (sum_sq / T as f64 - mean * mean).max(0.0);
            let h = eb_half_width(variance, T, DELTA);
            if true_mean < mean - h || true_mean > mean + h {
                misses += 1;
            }
        }
        // Reject only if this many misses would be a < α event for an
        // honest 1−δ' interval — the same test the stress gate applies.
        let p_tail = binomial_tail_ge(TRIALS, misses, DELTA);
        assert!(
            p_tail >= ALPHA,
            "{shape}: {misses}/{TRIALS} misses incompatible with δ'={DELTA} \
             (P[X≥{misses}]={p_tail:.3e})"
        );
    }
}
