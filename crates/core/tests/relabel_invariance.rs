//! Permutation-invariance of every registry engine.
//!
//! Renaming vertices must never change answers: each engine run on the
//! degree-descending relabeled twin, with ids inverse-mapped back, must
//! return a top-k that is tie-equivalent to its answer on the original
//! graph. "Tie-equivalent" is judged by the conformance comparator
//! (`conformance::check_topk`): same score multiset, per-vertex honesty,
//! and mandatory inclusion of everything strictly above the k-boundary —
//! the boundary tie class itself is legitimately interchangeable, and a
//! relabel is exactly the kind of change that re-picks it.

use conformance::{check_topk, REL_TOL};
use egobtw_core::naive::compute_all_naive;
use egobtw_core::registry::builtin_engines;
use egobtw_graph::{CsrGraph, Relabeling, VertexId};

/// Runs every registry engine on `g` and on its degree-relabeled twin and
/// checks both answers against the same truth vector.
fn assert_relabel_invariant(g: &CsrGraph, label: &str) {
    let truth = compute_all_naive(g);
    let relab = Relabeling::degree_descending(g);
    let twin = relab.apply(g);
    let n = g.n();
    for k in [0usize, 1, n / 2, n, n + 5] {
        for engine in builtin_engines() {
            let direct = engine.topk(g, k);
            check_topk(&truth, &direct, k, REL_TOL).unwrap_or_else(|e| {
                panic!("{label}: {} direct, k={k}: {e}", engine.name());
            });
            // Run on the twin, map ids back, restore the ordering contract.
            let via_twin = relab.restore_topk(engine.topk(&twin, k));
            check_topk(&truth, &via_twin, k, REL_TOL).unwrap_or_else(|e| {
                panic!("{label}: {} via relabeled twin, k={k}: {e}", engine.name());
            });
        }
    }
}

#[test]
fn classics_are_relabel_invariant() {
    assert_relabel_invariant(&egobtw_gen::classic::karate_club(), "karate");
    // Regular graphs are all-ties — the harshest boundary case.
    assert_relabel_invariant(&egobtw_gen::classic::cycle(9), "cycle9");
    assert_relabel_invariant(&egobtw_gen::classic::complete(7), "K7");
    assert_relabel_invariant(&egobtw_gen::classic::barbell(5), "barbell5");
    assert_relabel_invariant(&egobtw_gen::classic::star(12), "star12");
}

#[test]
fn paper_graph_is_relabel_invariant() {
    assert_relabel_invariant(&egobtw_gen::toy::paper_graph(), "paper-fig1");
}

#[test]
fn random_and_skewed_graphs_are_relabel_invariant() {
    for seed in 0..3u64 {
        assert_relabel_invariant(&egobtw_gen::gnp(36, 0.15, seed), &format!("gnp[{seed}]"));
    }
    // Power-law stand-in: hubs make the relabel actually move vertices.
    assert_relabel_invariant(&egobtw_gen::barabasi_albert(80, 3, 7), "ba80");
    assert_relabel_invariant(
        &egobtw_gen::planted_partition(
            egobtw_gen::community::PlantedPartition {
                communities: 5,
                community_size: 8,
                p_in: 0.6,
                cross_edges_per_vertex: 0.7,
            },
            3,
        ),
        "community",
    );
}

#[test]
fn degenerate_graphs_are_relabel_invariant() {
    assert_relabel_invariant(&CsrGraph::from_edges(0, &[]), "empty");
    assert_relabel_invariant(&CsrGraph::from_edges(1, &[]), "singleton");
    let isolated: Vec<(VertexId, VertexId)> = vec![(0, 1)];
    assert_relabel_invariant(&CsrGraph::from_edges(5, &isolated), "mostly-isolated");
}
