//! The approx engines must be *bit*-deterministic: one seed, one answer,
//! regardless of worker-thread count or process invocation. The engine
//! earns this with per-ego RNG streams (seeded `seed ^ mix64(vertex)`)
//! and barrier-synchronized rounds, so work-stealing order cannot leak
//! into the arithmetic. These tests pin the property the service layer
//! relies on for caching: replaying `TOPK … approx:…` yields the same
//! bytes every time.

use egobtw_core::{approx_topk, ApproxParams, ApproxTopk, SamplingStrategy};
use egobtw_gen::synth_family;

/// Full bit-level fingerprint of a result: every float as raw bits, plus
/// the sampling-effort counters — if any of this differs, two runs
/// diverged somewhere in the adaptive loop.
fn fingerprint(r: &ApproxTopk) -> Vec<u64> {
    let mut out = vec![
        r.uncovered_hi.to_bits(),
        r.rank_slack.to_bits(),
        r.samples_drawn,
        u64::from(r.rounds),
        u64::from(r.budget_exhausted),
    ];
    for e in &r.entries {
        out.push(u64::from(e.vertex));
        out.push(e.estimate.to_bits());
        out.push(e.lo.to_bits());
        out.push(e.hi.to_bits());
        out.push(u64::from(e.certified));
        out.push(u64::from(e.exact));
    }
    out
}

fn params(strategy: SamplingStrategy, threads: usize) -> ApproxParams {
    ApproxParams {
        threads,
        strategy,
        // Forced sampling everywhere: the exact-cutoff path is trivially
        // deterministic, the adaptive sampler is what needs pinning.
        exact_pair_cutoff: 0,
        ..ApproxParams::new(0.1, 0.01)
    }
}

#[test]
fn same_seed_is_bit_identical_across_thread_counts() {
    for family in ["ba", "er", "rmat", "community"] {
        let g = synth_family(family, 1.0, 7).unwrap();
        for strategy in [SamplingStrategy::Uniform, SamplingStrategy::HubStratified] {
            let reference = fingerprint(&approx_topk(&g, 8, &params(strategy, 1)));
            for threads in [2usize, 4, 8] {
                let got = fingerprint(&approx_topk(&g, 8, &params(strategy, threads)));
                assert_eq!(
                    got, reference,
                    "{family}/{strategy:?}: t={threads} diverged from t=1"
                );
            }
        }
    }
}

#[test]
fn same_seed_is_bit_identical_across_repeated_runs() {
    let g = synth_family("ba", 1.0, 11).unwrap();
    let p = params(SamplingStrategy::Uniform, 4);
    let a = fingerprint(&approx_topk(&g, 5, &p));
    let b = fingerprint(&approx_topk(&g, 5, &p));
    assert_eq!(a, b, "two in-process runs with one seed diverged");
}

#[test]
fn different_seeds_actually_sample_differently() {
    // Guard against a degenerate "determinism" where the RNG is unused.
    // Small scenario-sized graphs exactify every ego (the fallback makes
    // the final answer seed-independent by design), so pin the sampler
    // in the sampling regime: no exact fallback, a tight ε that cannot
    // resolve, and a short round budget — the run ends budget-exhausted
    // with raw sample means, which two seeds must draw differently.
    let g = synth_family("er", 1.0, 3).unwrap();
    let mut p1 = params(SamplingStrategy::Uniform, 1);
    p1.eps = 0.001;
    p1.max_rounds = 6;
    p1.exact_fallback_factor = f64::INFINITY;
    let mut p2 = p1;
    p1.seed = 1;
    p2.seed = 2;
    assert_ne!(
        fingerprint(&approx_topk(&g, 8, &p1)),
        fingerprint(&approx_topk(&g, 8, &p2)),
        "seed is not reaching the sampler"
    );
}
