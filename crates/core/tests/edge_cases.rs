//! Degenerate-input conformance for every core engine: empty graph,
//! single vertex, isolated vertices, stars, k = 0, k > n. Engines must
//! neither panic nor disagree on any of these.

use egobtw_core::registry::builtin_engines;
use egobtw_core::{compute_all_naive, naive::ego_betweenness_of};
use egobtw_gen::classic;
use egobtw_graph::{CsrGraph, VertexId};

fn check_engines(g: &CsrGraph, k: usize, ctx: &str) {
    let truth = compute_all_naive(g);
    let mut sorted = truth.clone();
    sorted.sort_by(|a, b| b.total_cmp(a));
    for engine in builtin_engines() {
        let got = engine.topk(g, k);
        assert_eq!(
            got.len(),
            k.min(g.n()),
            "{ctx}: {} returned wrong length",
            engine.name()
        );
        for (rank, &(v, s)) in got.iter().enumerate() {
            assert!(
                (s - truth[v as usize]).abs() < 1e-9,
                "{ctx}: {} vertex {v}",
                engine.name()
            );
            assert!(
                (s - sorted[rank]).abs() < 1e-9,
                "{ctx}: {} rank {rank}",
                engine.name()
            );
        }
    }
}

#[test]
fn empty_graph_all_engines() {
    let g = CsrGraph::from_edges(0, &[]);
    for k in [0usize, 1, 5] {
        check_engines(&g, k, &format!("empty k={k}"));
    }
}

#[test]
fn single_vertex_all_engines() {
    let g = CsrGraph::from_edges(1, &[]);
    assert_eq!(ego_betweenness_of(&g, 0), 0.0);
    for k in [0usize, 1, 2] {
        check_engines(&g, k, &format!("single k={k}"));
    }
}

#[test]
fn edgeless_graph_with_many_vertices() {
    let g = CsrGraph::from_edges(7, &[]);
    for k in [0usize, 3, 7, 12] {
        check_engines(&g, k, &format!("edgeless k={k}"));
    }
}

#[test]
fn two_vertices_one_edge() {
    let g = CsrGraph::from_edges(2, &[(0, 1)]);
    for k in [0usize, 1, 2, 9] {
        check_engines(&g, k, &format!("K2 k={k}"));
    }
}

#[test]
fn star_including_isolated_tail() {
    // Star on 0..6 plus isolated vertices 6..9: engines must rank the
    // isolated zeros without touching uninitialized state.
    let edges: Vec<(VertexId, VertexId)> = (1..6).map(|v| (0, v)).collect();
    let g = CsrGraph::from_edges(9, &edges);
    for k in [0usize, 1, 5, 9, 14] {
        check_engines(&g, k, &format!("star+isolated k={k}"));
    }
}

#[test]
fn k_zero_and_k_over_n_on_named_graphs() {
    for (name, g) in [
        ("karate", classic::karate_club()),
        ("complete6", classic::complete(6)),
        ("path1", classic::path(1)),
        ("star1", classic::star(1)),
        ("barbell3", classic::barbell(3)),
    ] {
        let n = g.n();
        for k in [0usize, n, n + 1, n + 100] {
            check_engines(&g, k, &format!("{name} k={k}"));
        }
    }
}

#[test]
fn duplicate_and_self_loop_edges_collapse_before_search() {
    // from_edges tolerates duplicates (both orientations) and self-loops;
    // engines must see the cleaned simple graph.
    let messy = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (0, 1), (2, 2), (1, 2), (2, 1), (3, 3)]);
    let clean = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]);
    assert_eq!(messy.m(), clean.m());
    let truth = compute_all_naive(&clean);
    for engine in builtin_engines() {
        let got = engine.topk(&messy, 4);
        for &(v, s) in &got {
            assert!(
                (s - truth[v as usize]).abs() < 1e-9,
                "{}: duplicate-edge input changed CB({v})",
                engine.name()
            );
        }
    }
}
