//! Tie-boundary conformance for every core engine.
//!
//! Graphs engineered so ranks `k−1`, `k`, `k+1` share a score. Any subset
//! of the tied class is a valid boundary fill, so engines may disagree on
//! *vertices* — but they must agree exactly on the returned score
//! multiset, and every returned vertex must carry its true score. This is
//! the contract `TopKSet`'s deterministic tie-break makes easy to get
//! wrong in subtle ways (e.g. truncating the tie class, or returning the
//! k-th score from a stale heap entry).

use egobtw_core::registry::{builtin_engines, topk_from_scores};
use egobtw_core::{compute_all_naive, TopKSet};
use egobtw_graph::{CsrGraph, VertexId};

/// Disjoint union: one big star (hub scores 21) and `copies` tied medium
/// stars (hubs score 10 each), so the tie class sits just below rank 0.
fn tied_stars(copies: usize) -> CsrGraph {
    let mut edges: Vec<(VertexId, VertexId)> = (1..8).map(|v| (0, v)).collect();
    let mut base = 8u32;
    for _ in 0..copies {
        edges.extend((1..6).map(|v| (base, base + v)));
        base += 6;
    }
    CsrGraph::from_edges(base as usize, &edges)
}

/// Asserts `got` is a valid tie-aware top-k of `truth`: right length,
/// honest per-vertex scores, and the exact score multiset of the k best.
fn assert_tie_aware_topk(truth: &[f64], got: &[(VertexId, f64)], k: usize, ctx: &str) {
    assert_eq!(got.len(), k.min(truth.len()), "{ctx}: length");
    let mut sorted = truth.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut seen = vec![false; truth.len()];
    for (rank, &(v, s)) in got.iter().enumerate() {
        assert!(!seen[v as usize], "{ctx}: vertex {v} twice");
        seen[v as usize] = true;
        assert!(
            (s - truth[v as usize]).abs() < 1e-9,
            "{ctx}: vertex {v} reported {s}, truth {}",
            truth[v as usize]
        );
        assert!(
            (s - sorted[rank]).abs() < 1e-9,
            "{ctx}: rank {rank} score {s}, oracle {}",
            sorted[rank]
        );
    }
}

#[test]
fn stars_tie_across_the_boundary() {
    // 4 tied hubs at ranks 1..5: k = 2, 3, 4 all split the tie class, so
    // ranks k−1, k, k+1 share the score 10 for k ∈ {2, 3, 4}.
    let g = tied_stars(4);
    let truth = compute_all_naive(&g);
    for k in [1usize, 2, 3, 4, 5, 6] {
        for engine in builtin_engines() {
            let got = engine.topk(&g, k);
            assert_tie_aware_topk(&truth, &got, k, &format!("{} k={k}", engine.name()));
        }
    }
}

#[test]
fn path_interior_is_one_giant_tie_class() {
    // P_12: ten interior vertices all score exactly 1.0; every k from 1
    // to 10 cuts through the same tie class.
    let g = egobtw_gen::classic::path(12);
    let truth = compute_all_naive(&g);
    for k in 1..=12usize {
        for engine in builtin_engines() {
            let got = engine.topk(&g, k);
            assert_tie_aware_topk(&truth, &got, k, &format!("{} k={k}", engine.name()));
        }
    }
}

#[test]
fn engines_agree_on_the_score_multiset_at_every_cut() {
    // Cross-engine agreement without consulting truth: sorted score lists
    // must match pairwise to the last bit of tolerance.
    let g = tied_stars(3);
    for k in [2usize, 3, 4] {
        let engines = builtin_engines();
        let reference: Vec<f64> = engines[0].topk(&g, k).iter().map(|e| e.1).collect();
        for engine in &engines[1..] {
            let scores: Vec<f64> = engine.topk(&g, k).iter().map(|e| e.1).collect();
            assert_eq!(scores.len(), reference.len());
            for (a, b) in scores.iter().zip(&reference) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "{} vs {} at k={k}: {a} vs {b}",
                    engine.name(),
                    engines[0].name()
                );
            }
        }
    }
}

#[test]
fn topkset_keeps_ties_deterministically_under_eviction_storm() {
    // Offer a long run of equal scores: the set must keep exactly k, all
    // with that score, preferring small ids (documented tie-break).
    let mut t = TopKSet::new(3);
    for v in (0..100u32).rev() {
        t.offer(v, 7.0);
    }
    let out = t.into_sorted_vec();
    assert_eq!(out, vec![(0, 7.0), (1, 7.0), (2, 7.0)]);
    // And mixing a strictly better entry still evicts only tied ones.
    let mut t = TopKSet::new(3);
    for v in 0..50u32 {
        t.offer(v, 7.0);
    }
    assert!(t.offer(99, 8.0));
    let out = t.into_sorted_vec();
    assert_eq!(out[0], (99, 8.0));
    assert!(out[1..].iter().all(|&(_, s)| s == 7.0));
}

#[test]
fn topk_from_scores_boundary_is_prefix_of_tie_class() {
    // The registry ranking helper must cut tie classes by ascending id.
    let scores = [3.0, 5.0, 3.0, 3.0, 5.0];
    assert_eq!(
        topk_from_scores(&scores, 3),
        vec![(1, 5.0), (4, 5.0), (0, 3.0)]
    );
    assert_eq!(topk_from_scores(&scores, 4)[3], (2, 3.0));
}
