//! The shared triangle-driven engine behind Algorithms 1–3.
//!
//! All three algorithms reduce to one primitive: *process a triangle*
//! (see DESIGN.md §3). Processing triangle `{a,b,c}`:
//!
//! 1. writes the three edge entries (`S_a(b,c) = S_b(a,c) = S_c(a,b) = 0`);
//! 2. for each triangle edge `(p,q)` with third corner `t`, pairs `t`
//!    against the common neighbors of `(p,q)` seen in *previously
//!    processed* triangles (`cn(p,q)`, the paper's `rd(·)` lists): every
//!    such `x` with `(x,t) ∉ E` is a diamond — `t`'s opposite wing gains a
//!    connector in both `S_p` and `S_q`;
//! 3. appends `t` to `cn(p,q)` (and symmetrically for the other edges).
//!
//! Invariant: `x ∈ cn(p,q)` ⟺ triangle `{p,q,x}` has been processed.
//! Hence each triangle is processed at most once, every diamond is counted
//! exactly once (when the *later* of its two triangles is processed), and
//! a vertex's map `S_u` is complete exactly when every triangle containing
//! `u` has been processed.
//!
//! * BaseBSearch achieves completeness by visiting vertices in the total
//!   order and processing the triangles each vertex *leads*
//!   ([`Engine::process_vertex_in_order`]);
//! * OptBSearch calls [`Engine::complete_vertex`] (the paper's EgoBWCal),
//!   which processes exactly the still-unprocessed triangles containing
//!   the vertex, wherever the search has wandered so far.

use crate::smap::SMapStore;
use crate::stats::SearchStats;
use egobtw_graph::triangle::intersect_rank_sorted;
use egobtw_graph::{
    pack_pair, CsrGraph, DegreeOrder, EdgeSet, FxHashMap, FxHashSet, OrientedGraph, VertexId,
};

/// Shared state of one search over one graph.
pub struct Engine<'g> {
    g: &'g CsrGraph,
    order: DegreeOrder,
    og: OrientedGraph,
    edges: EdgeSet,
    store: SMapStore,
    /// Per-edge list of common neighbors already seen in processed
    /// triangles (`rd` in Algorithm 3).
    cn: FxHashMap<u64, Vec<VertexId>>,
    /// `B` array of the paper: vertices whose `CB` is exact.
    completed: Vec<bool>,
    /// Cached exact values for completed vertices (NaN = not computed).
    cb_cache: Vec<f64>,
    tri_buf: Vec<(VertexId, VertexId)>,
    scratch: Vec<VertexId>,
    /// Work counters for the current run.
    pub stats: SearchStats,
}

impl<'g> Engine<'g> {
    /// Fresh engine over `g` (computes the total order, the orientation,
    /// and the edge set; allocates empty maps).
    pub fn new(g: &'g CsrGraph) -> Self {
        let order = DegreeOrder::new(g);
        let og = OrientedGraph::new(g, &order);
        Engine {
            g,
            og,
            edges: EdgeSet::from_graph(g),
            store: SMapStore::new(g.n()),
            cn: FxHashMap::default(),
            completed: vec![false; g.n()],
            cb_cache: vec![f64::NAN; g.n()],
            tri_buf: Vec::new(),
            scratch: Vec::new(),
            stats: SearchStats::default(),
            order,
        }
    }

    /// The graph this engine runs over.
    pub fn graph(&self) -> &CsrGraph {
        self.g
    }

    /// The total order `≺`.
    pub fn order(&self) -> &DegreeOrder {
        &self.order
    }

    /// Read access to the map store (tests and harnesses).
    pub fn store(&self) -> &SMapStore {
        &self.store
    }

    /// Whether `CB(u)` has been computed exactly.
    #[inline]
    pub fn is_completed(&self, u: VertexId) -> bool {
        self.completed[u as usize]
    }

    /// Exact `CB(u)` if it has been computed.
    pub fn cached_cb(&self, u: VertexId) -> Option<f64> {
        self.completed[u as usize].then(|| self.cb_cache[u as usize])
    }

    /// The dynamic upper bound `ũb(u)` (Lemma 3) from the current partial
    /// map; equals `CB(u)` once `u` is complete.
    #[inline]
    pub fn dynamic_bound(&self, u: VertexId) -> f64 {
        self.store.map(u).cb_given_degree(self.g.degree(u))
    }

    /// Core primitive: processes one *not yet processed* triangle.
    fn process_triangle(&mut self, a: VertexId, b: VertexId, c: VertexId) {
        self.stats.triangles_processed += 1;
        self.store.map_mut(a).set_edge(b, c);
        self.store.map_mut(b).set_edge(a, c);
        self.store.map_mut(c).set_edge(a, b);
        for (p, q, t) in [(a, b, c), (a, c, b), (b, c, a)] {
            let list = self.cn.entry(pack_pair(p, q)).or_default();
            for &x in list.iter() {
                debug_assert!(x != t, "triangle ({p},{q},{t}) processed twice");
                if !self.edges.contains(x, t) {
                    self.store.map_mut(p).add_connector(x, t);
                    self.store.map_mut(q).add_connector(x, t);
                    self.stats.diamonds_counted += 1;
                }
            }
            // `list` stayed valid throughout: the loop body only touched
            // `store`/`edges`/`stats`, all disjoint fields.
            list.push(t);
        }
    }

    /// BaseBSearch step: processes every triangle *led by* `u` (i.e. with
    /// `u` as its `≺`-minimal corner). When vertices are fed in total
    /// order, `S_u` is complete at the end of `u`'s own call.
    pub fn process_vertex_in_order(&mut self, u: VertexId) {
        let mut tris = std::mem::take(&mut self.tri_buf);
        let mut scratch = std::mem::take(&mut self.scratch);
        tris.clear();
        let nu = self.og.out_neighbors(u);
        for &v in nu {
            scratch.clear();
            intersect_rank_sorted(&self.order, nu, self.og.out_neighbors(v), &mut scratch);
            tris.extend(scratch.iter().map(|&w| (v, w)));
        }
        for &(v, w) in &tris {
            self.process_triangle(u, v, w);
        }
        self.tri_buf = tris;
        self.scratch = scratch;
    }

    /// Finalizes `CB(u)` assuming `S_u` is already complete (BaseBSearch's
    /// in-order guarantee). Debug builds verify the guarantee against the
    /// naive oracle.
    pub fn finalize_in_order(&mut self, u: VertexId) -> f64 {
        debug_assert!(!self.completed[u as usize]);
        let cb = self.dynamic_bound(u);
        self.completed[u as usize] = true;
        self.cb_cache[u as usize] = cb;
        self.stats.exact_computations += 1;
        cb
    }

    /// EgoBWCal (Algorithm 3): completes `S_u` by processing exactly the
    /// unprocessed triangles containing `u`, then returns the exact
    /// `CB(u)`. Safe to call in any order, any number of times (idempotent
    /// after the first call); also tightens other vertices' dynamic bounds
    /// as a side effect, which is what makes OptBSearch's bound "dynamic".
    pub fn complete_vertex(&mut self, u: VertexId) -> f64 {
        if self.completed[u as usize] {
            return self.cb_cache[u as usize];
        }
        let mut full = std::mem::take(&mut self.scratch);
        let mut seen: FxHashSet<VertexId> = FxHashSet::default();
        let mut fresh: Vec<(VertexId, VertexId)> = Vec::new();
        for idx in 0..self.g.degree(u) {
            let b = self.g.neighbors(u)[idx];
            full.clear();
            // Hybrid dispatch: hub rows answer with bit-probes instead of
            // rescanning the long sorted slice (EgoBWCal's hot query).
            self.g.common_neighbors_into(u, b, &mut full);
            seen.clear();
            if let Some(list) = self.cn.get(&pack_pair(u, b)) {
                if list.len() == full.len() {
                    continue; // every triangle on edge (u,b) already done
                }
                seen.extend(list.iter().copied());
            }
            fresh.extend(
                full.iter()
                    .copied()
                    .filter(|y| !seen.contains(y))
                    .map(|y| (b, y)),
            );
            for &(b2, y) in fresh.iter() {
                self.process_triangle(u, b2, y);
            }
            fresh.clear();
        }
        self.scratch = full;
        self.completed[u as usize] = true;
        self.stats.exact_computations += 1;
        let cb = self.dynamic_bound(u);
        self.cb_cache[u as usize] = cb;
        cb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::ego_betweenness_of;
    use egobtw_gen::{classic, gnp, toy};

    fn assert_close(a: f64, b: f64, what: &str) {
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
            "{what}: {a} vs {b}"
        );
    }

    /// Ordered processing (BaseBSearch style) matches the oracle on every
    /// vertex.
    fn check_ordered(g: &CsrGraph) {
        let mut e = Engine::new(g);
        let order: Vec<VertexId> = e.order().iter().collect();
        for u in order {
            e.process_vertex_in_order(u);
            let cb = e.finalize_in_order(u);
            assert_close(cb, ego_betweenness_of(g, u), &format!("vertex {u}"));
        }
    }

    /// Out-of-order completion (OptBSearch style) matches the oracle.
    fn check_completion(g: &CsrGraph, visit: impl Iterator<Item = VertexId>) {
        let mut e = Engine::new(g);
        for u in visit {
            let cb = e.complete_vertex(u);
            assert_close(cb, ego_betweenness_of(g, u), &format!("vertex {u}"));
        }
    }

    #[test]
    fn ordered_matches_oracle_on_classics() {
        for g in [
            classic::complete(7),
            classic::star(9),
            classic::path(8),
            classic::cycle(6),
            classic::barbell(5),
            classic::karate_club(),
        ] {
            check_ordered(&g);
        }
    }

    #[test]
    fn ordered_matches_oracle_on_paper_graph() {
        check_ordered(&toy::paper_graph());
    }

    #[test]
    fn completion_any_order_matches_oracle() {
        let g = toy::paper_graph();
        // Forward, reverse, and a shuffled visit order.
        check_completion(&g, 0..g.n() as VertexId);
        check_completion(&g, (0..g.n() as VertexId).rev());
        let weird = [5u32, 9, 0, 15, 8, 7, 3, 2, 11, 1, 6, 4, 13, 12, 14, 10];
        check_completion(&g, weird.into_iter());
    }

    #[test]
    fn completion_is_idempotent() {
        let g = classic::karate_club();
        let mut e = Engine::new(&g);
        let first = e.complete_vertex(0);
        let tris = e.stats.triangles_processed;
        let second = e.complete_vertex(0);
        assert_eq!(first, second);
        assert_eq!(e.stats.triangles_processed, tris, "no re-processing");
        assert_eq!(e.stats.exact_computations, 1);
    }

    #[test]
    fn mixed_ordered_and_completion() {
        // Interleave the two entry points: complete some vertices out of
        // order, then run the remaining ordered sweep via completion.
        let g = classic::karate_club();
        let mut e = Engine::new(&g);
        e.complete_vertex(33);
        e.complete_vertex(0);
        for u in 0..g.n() as VertexId {
            let cb = e.complete_vertex(u);
            assert_close(cb, ego_betweenness_of(&g, u), &format!("v{u}"));
        }
        // Every triangle processed exactly once overall.
        assert_eq!(
            e.stats.triangles_processed,
            egobtw_graph::triangle::count_triangles(&g)
        );
    }

    #[test]
    fn random_graphs_match_oracle() {
        for seed in 0..5 {
            let g = gnp(40, 0.15, seed);
            check_ordered(&g);
            check_completion(&g, (0..g.n() as VertexId).rev());
        }
    }

    #[test]
    fn dynamic_bound_dominates_cb_and_tightens() {
        let g = toy::paper_graph();
        let mut e = Engine::new(&g);
        let truth: Vec<f64> = (0..16).map(|v| ego_betweenness_of(&g, v)).collect();
        let mut prev: Vec<f64> = (0..16u32).map(|v| e.dynamic_bound(v)).collect();
        for v in [toy::ids::C, toy::ids::I, toy::ids::F, toy::ids::X] {
            e.complete_vertex(v);
            for u in 0..16u32 {
                let b = e.dynamic_bound(u);
                assert!(
                    b >= truth[u as usize] - 1e-9,
                    "bound {b} below CB {} for {u}",
                    truth[u as usize]
                );
                assert!(
                    b <= prev[u as usize] + 1e-9,
                    "bound increased for {u}: {b} > {}",
                    prev[u as usize]
                );
                prev[u as usize] = b;
            }
        }
    }

    #[test]
    fn paper_example4_bound_after_c_and_i() {
        // Fig. 3(a): after computing c and i exactly, the paper's trace
        // refreshes f's dynamic bound to 23/2. Our engine shares *all*
        // triangle information discovered by EgoBWCal (the paper's
        // identified-information propagation is a subset), so our bound at
        // the same point is at least as tight — and still a valid upper
        // bound on CB(f) = 11. In fact the three triangles containing f
        // all touch c or i, so here the bound is already exact.
        let g = toy::paper_graph();
        let mut e = Engine::new(&g);
        e.complete_vertex(toy::ids::C);
        e.complete_vertex(toy::ids::I);
        let b = e.dynamic_bound(toy::ids::F);
        assert!(b <= 23.0 / 2.0 + 1e-9, "no looser than the paper: {b}");
        assert!(b >= 11.0 - 1e-9, "still an upper bound on CB(f): {b}");
        assert_close(b, 11.0, "all of f's triangles touch c or i");
    }
}
