//! Exact ego-betweenness for *all* vertices in one edge-centric pass.
//!
//! When no early termination is possible (the `k = n` baseline of Exp-5,
//! and the kernel the parallel crate distributes), the `cn` bookkeeping of
//! the ordered engine is unnecessary: iterating every edge `(a,b)` exactly
//! once and pairing the members of `C = N(a) ∩ N(b)` counts
//!
//! * each triangle `{a,b,x}` once per edge — writing the edge entry of the
//!   *opposite* corner's map (`S_x(a,b) = 0`), so all three entries of a
//!   triangle are produced by its three edges;
//! * each diamond `{(a,b),x,y}` exactly once — at its center edge —
//!   bumping `S_a(x,y)` (connector `b`) and `S_b(x,y)` (connector `a`).
//!
//! The result is the same complete map store the ordered engine produces,
//! by a strictly simpler loop.

use crate::cancel::{Cancel, Cancelled};
use crate::smap::SMapStore;
use crate::stats::SearchStats;
use egobtw_graph::{CsrGraph, EdgeSet, KernelParams, VertexId};

/// Computes `CB(v)` for every vertex. Returns the values and work counters.
pub fn compute_all(g: &CsrGraph) -> (Vec<f64>, SearchStats) {
    compute_all_with(g, &KernelParams::new())
}

/// Vertices per ownership chunk between cancellation checkpoints in
/// [`compute_all_cancellable`]: small enough that a cancelled pass stops
/// within milliseconds, large enough that the checks are free.
const CANCEL_CHUNK: usize = 512;

/// [`compute_all`] with cooperative cancellation: the edge-centric pass is
/// driven in [`CANCEL_CHUNK`]-vertex ownership ranges through the same
/// [`process_edge_range_with`] kernel (so results stay bit-identical),
/// polling `cancel` between chunks and between finalize blocks.
pub fn compute_all_cancellable(
    g: &CsrGraph,
    cancel: &Cancel,
) -> Result<(Vec<f64>, SearchStats), Cancelled> {
    let params = KernelParams::new();
    let mut store = SMapStore::new(g.n());
    let mut stats = SearchStats::default();
    let edges = EdgeSet::from_graph(g);
    let mut lo = 0usize;
    while lo < g.n() {
        cancel.check()?;
        let hi = (lo + CANCEL_CHUNK).min(g.n());
        process_edge_range_with(g, &edges, &mut store, &mut stats, lo, hi, &params);
        lo = hi;
    }
    let mut cb = Vec::with_capacity(g.n());
    for v in 0..g.n() as VertexId {
        if (v as usize).is_multiple_of(CANCEL_CHUNK) {
            cancel.check()?;
        }
        cb.push(store.map(v).cb_given_degree_det(g.degree(v)));
    }
    stats.exact_computations = g.n();
    Ok((cb, stats))
}

/// [`compute_all`] with pinned intersection-dispatch thresholds — the perf
/// harness uses [`KernelParams::legacy`] here to time the pre-hybrid
/// baseline on a bitmap-free graph.
pub fn compute_all_with(g: &CsrGraph, params: &KernelParams) -> (Vec<f64>, SearchStats) {
    let (store, mut stats) = build_store_with(g, params);
    // Deterministic finalize: makes the output bit-identical to the
    // parallel PEBW engines, which build the same maps in another order.
    let cb = (0..g.n() as VertexId)
        .map(|v| store.map(v).cb_given_degree_det(g.degree(v)))
        .collect();
    stats.exact_computations = g.n();
    (cb, stats)
}

/// Builds the complete `S`-map store for `g` in one edge-centric pass.
/// Shared by [`compute_all`] and the dynamic index constructor
/// (`LocalIndex::new`), so both route common-neighbor queries through the
/// hybrid kernels.
pub fn build_store(g: &CsrGraph) -> (SMapStore, SearchStats) {
    build_store_with(g, &KernelParams::new())
}

/// [`build_store`] with explicit dispatch thresholds.
pub fn build_store_with(g: &CsrGraph, params: &KernelParams) -> (SMapStore, SearchStats) {
    let mut store = SMapStore::new(g.n());
    let mut stats = SearchStats::default();
    let edges = EdgeSet::from_graph(g);
    process_edge_range_with(g, &edges, &mut store, &mut stats, 0, g.n(), params);
    (store, stats)
}

/// Processes the edges *owned* by vertices `lo..hi` (an edge `(u,v)` with
/// `u < v` is owned by `u`), updating `store` in place. Factored out so the
/// parallel crate can partition ownership ranges; the sequential
/// [`compute_all`] is the single-range instantiation.
pub fn process_edge_range(
    g: &CsrGraph,
    edges: &EdgeSet,
    store: &mut SMapStore,
    stats: &mut SearchStats,
    lo: usize,
    hi: usize,
) {
    process_edge_range_with(g, edges, store, stats, lo, hi, &KernelParams::new());
}

/// [`process_edge_range`] with explicit dispatch thresholds.
pub fn process_edge_range_with(
    g: &CsrGraph,
    edges: &EdgeSet,
    store: &mut SMapStore,
    stats: &mut SearchStats,
    lo: usize,
    hi: usize,
    params: &KernelParams,
) {
    let mut common: Vec<VertexId> = Vec::new();
    for a in lo as VertexId..hi as VertexId {
        if g.degree(a) == 1 {
            // N(a) = {b}: every owned edge has an empty common neighborhood.
            continue;
        }
        for &b in g.neighbors(a) {
            if b <= a {
                continue;
            }
            common.clear();
            g.common_neighbors_into_with(a, b, params, &mut common);
            apply_edge(edges, store, stats, a, b, &common);
        }
    }
}

/// Applies one edge's triangle/diamond contributions given its common
/// neighborhood. Exposed for the parallel crate, which computes `common`
/// itself and routes map access through locks.
#[inline]
pub fn apply_edge(
    edges: &EdgeSet,
    store: &mut SMapStore,
    stats: &mut SearchStats,
    a: VertexId,
    b: VertexId,
    common: &[VertexId],
) {
    for &x in common {
        store.map_mut(x).set_edge(a, b);
        stats.triangles_processed += 1; // counted once per (edge, corner) /3 below
    }
    // Each triangle is seen by three edges; normalize in the caller if an
    // exact triangle count is needed. Here we count corner-writes.
    for (i, &x) in common.iter().enumerate() {
        for &y in common.iter().skip(i + 1) {
            if !edges.contains(x, y) {
                store.map_mut(a).add_connector(x, y);
                store.map_mut(b).add_connector(x, y);
                stats.diamonds_counted += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::compute_all_naive;
    use egobtw_gen::{classic, gnp, planted_partition, toy};

    fn check(g: &CsrGraph) {
        let (fast, stats) = compute_all(g);
        let slow = compute_all_naive(g);
        assert_eq!(fast.len(), slow.len());
        for (v, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert!((a - b).abs() < 1e-9, "vertex {v}: {a} vs {b}");
        }
        assert_eq!(stats.exact_computations, g.n());
    }

    #[test]
    fn classics() {
        check(&classic::complete(8));
        check(&classic::star(10));
        check(&classic::path(9));
        check(&classic::cycle(7));
        check(&classic::barbell(5));
        check(&classic::karate_club());
    }

    #[test]
    fn paper_graph_golden() {
        let g = toy::paper_graph();
        let (cb, _) = compute_all(&g);
        for (v, expect) in toy::expected_cb() {
            assert!(
                (cb[v as usize] - expect).abs() < 1e-9,
                "CB({}) = {} expected {expect}",
                toy::label(v),
                cb[v as usize]
            );
        }
    }

    #[test]
    fn random_graphs() {
        for seed in 0..4 {
            check(&gnp(50, 0.12, seed));
        }
    }

    #[test]
    fn community_graph() {
        let g = planted_partition(
            egobtw_gen::community::PlantedPartition {
                communities: 8,
                community_size: 8,
                p_in: 0.6,
                cross_edges_per_vertex: 0.8,
            },
            5,
        );
        check(&g);
    }

    #[test]
    fn triangle_corner_writes_are_3x_triangles() {
        let g = classic::karate_club();
        let (_, stats) = compute_all(&g);
        assert_eq!(
            stats.triangles_processed,
            3 * egobtw_graph::triangle::count_triangles(&g)
        );
    }

    #[test]
    fn cancellable_pass_is_bit_identical_and_aborts_when_cancelled() {
        let g = gnp(60, 0.15, 3);
        let (plain, _) = compute_all(&g);
        let (chunked, _) = compute_all_cancellable(&g, &Cancel::never()).unwrap();
        assert_eq!(plain, chunked, "chunked drive must not change results");
        let cancelled = Cancel::new();
        cancelled.cancel();
        assert!(matches!(
            compute_all_cancellable(&g, &cancelled),
            Err(Cancelled)
        ));
    }

    #[test]
    fn agrees_with_ordered_engine() {
        let g = gnp(40, 0.2, 17);
        let (edge_centric, _) = compute_all(&g);
        let mut engine = crate::engine::Engine::new(&g);
        for i in 0..g.n() {
            let u = engine.order().at(i);
            engine.process_vertex_in_order(u);
            let cb = engine.finalize_in_order(u);
            assert!((cb - edge_centric[u as usize]).abs() < 1e-9, "vertex {u}");
        }
    }
}
