//! The per-vertex pair-count maps `S_u`.
//!
//! For each vertex `u`, `S_u` records, for pairs `(i,j)` of `u`'s
//! neighbors (keyed by packed pairs):
//!
//! * **absent** — `(i,j) ∉ E` and no connector discovered yet; such a pair
//!   contributes `1` to `CB(u)` if the map is complete (it is a `S̈` pair);
//! * **`val = 0`** — `(i,j) ∈ E` (the pair contributes `0`, and is never
//!   incremented — mirroring Algorithm 1's "keep `val = 0` if connected");
//! * **`val = c > 0`** — `(i,j) ∉ E` with `c` discovered connectors
//!   (vertices adjacent to both, inside `N(u)`, other than `u`); the pair
//!   contributes `1/(c+1)`.
//!
//! `CB(u) = d(d-1)/2 − Σ_entries (1 − contrib)`, evaluated by
//! [`PairMap::cb_given_degree`]; on a partial map the same expression is
//! the dynamic upper bound `ũb(u)` of Lemma 3, and it only decreases as
//! entries are added or incremented.

use egobtw_graph::{pack_pair, FxHashMap, VertexId};

/// Contribution of one stored entry to `CB` (absent entries contribute 1).
#[inline]
pub fn entry_contribution(val: u32) -> f64 {
    if val == 0 {
        0.0
    } else {
        1.0 / (f64::from(val) + 1.0)
    }
}

/// One vertex's pair-count map.
#[derive(Clone, Debug, Default)]
pub struct PairMap {
    map: FxHashMap<u64, u32>,
}

impl PairMap {
    /// Marks `(i,j)` as an edge between neighbors (`val = 0`).
    ///
    /// Must be called at most once per pair: the engine invokes it exactly
    /// when the corresponding triangle is processed.
    #[inline]
    pub fn set_edge(&mut self, i: VertexId, j: VertexId) {
        let prev = self.map.insert(pack_pair(i, j), 0);
        debug_assert!(
            prev.is_none(),
            "edge entry ({i},{j}) written twice (prev = {prev:?})"
        );
    }

    /// Records one more connector for the non-adjacent pair `(i,j)`.
    ///
    /// The caller must have verified `(i,j) ∉ E`; edge entries are never
    /// incremented.
    #[inline]
    pub fn add_connector(&mut self, i: VertexId, j: VertexId) -> u32 {
        use std::collections::hash_map::Entry;
        match self.map.entry(pack_pair(i, j)) {
            Entry::Occupied(mut e) => {
                debug_assert!(*e.get() > 0, "bumping an edge entry ({i},{j})");
                *e.get_mut() += 1;
                *e.get()
            }
            Entry::Vacant(slot) => {
                slot.insert(1);
                1
            }
        }
    }

    /// Looks up the raw value for a pair.
    #[inline]
    pub fn get(&self, i: VertexId, j: VertexId) -> Option<u32> {
        self.map.get(&pack_pair(i, j)).copied()
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(packed_pair, val)` entries (hash order).
    #[inline]
    pub fn entries(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Evaluates `d(d−1)/2 − Σ (1 − contrib)` over the stored entries.
    ///
    /// On a complete map this is `CB(u)` (Lemma 2); on a partial map it is
    /// the dynamic upper bound `ũb(u)` (Lemma 3).
    pub fn cb_given_degree(&self, degree: usize) -> f64 {
        let d = degree as f64;
        let mut cb = d * (d - 1.0) / 2.0;
        for (_, val) in self.entries() {
            cb -= 1.0 - entry_contribution(val);
        }
        cb
    }

    /// Deterministic variant of [`PairMap::cb_given_degree`]: entries are
    /// summed in sorted key order, so two maps with equal *content* yield
    /// bit-identical values no matter what order the content was built in.
    ///
    /// The full-computation paths (sequential `compute_all` and the
    /// parallel PEBW finalizers) use this, making their outputs exactly
    /// comparable (`==`, not epsilon-compare) across thread counts and
    /// work schedules. The hot search paths keep the hash-order variant:
    /// bounds only need to be *valid*, not bit-stable, and the sort would
    /// cost `O(d² log d)` per refresh.
    pub fn cb_given_degree_det(&self, degree: usize) -> f64 {
        let mut entries: Vec<(u64, u32)> = self.entries().collect();
        entries.sort_unstable_by_key(|&(key, _)| key);
        let d = degree as f64;
        let mut cb = d * (d - 1.0) / 2.0;
        for (_, val) in entries {
            cb -= 1.0 - entry_contribution(val);
        }
        cb
    }

    // ----- mutation helpers used by the dynamic-maintenance crate -----

    /// Inserts or overwrites the raw value for a pair (dynamic updates
    /// rewrite entries when edges appear/disappear inside an ego network).
    #[inline]
    pub fn set_raw(&mut self, i: VertexId, j: VertexId, val: u32) {
        self.map.insert(pack_pair(i, j), val);
    }

    /// Removes a pair entirely (e.g. when a neighbor leaves the ego
    /// network). Returns the previous value.
    #[inline]
    pub fn remove(&mut self, i: VertexId, j: VertexId) -> Option<u32> {
        self.map.remove(&pack_pair(i, j))
    }

    /// Decrements the connector count of a non-adjacent pair, removing the
    /// entry when it reaches zero (absent ≡ zero connectors). Returns the
    /// new count. Panics in debug builds if the entry is missing or an
    /// edge entry.
    #[inline]
    pub fn remove_connector(&mut self, i: VertexId, j: VertexId) -> u32 {
        let key = pack_pair(i, j);
        let slot = self
            .map
            .get_mut(&key)
            .expect("remove_connector on missing entry");
        debug_assert!(*slot > 0, "remove_connector on an edge entry");
        *slot -= 1;
        let now = *slot;
        if now == 0 {
            self.map.remove(&key);
        }
        now
    }
}

/// The full store: one [`PairMap`] per vertex.
#[derive(Clone, Debug, Default)]
pub struct SMapStore {
    maps: Vec<PairMap>,
}

impl SMapStore {
    /// Store for `n` vertices, all maps empty.
    pub fn new(n: usize) -> Self {
        SMapStore {
            maps: vec![PairMap::default(); n],
        }
    }

    /// Immutable access to `S_u`.
    #[inline]
    pub fn map(&self, u: VertexId) -> &PairMap {
        &self.maps[u as usize]
    }

    /// Mutable access to `S_u`.
    #[inline]
    pub fn map_mut(&mut self, u: VertexId) -> &mut PairMap {
        &mut self.maps[u as usize]
    }

    /// Number of vertices covered.
    pub fn n(&self) -> usize {
        self.maps.len()
    }

    /// Extends the store with one empty map (vertex insertion).
    pub fn push_vertex(&mut self) {
        self.maps.push(PairMap::default());
    }

    /// Total entries across all maps — the live memory of Theorem 2's
    /// `O(Σ d(u)²)` bound.
    pub fn total_entries(&self) -> usize {
        self.maps.iter().map(PairMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributions() {
        assert_eq!(entry_contribution(0), 0.0);
        assert_eq!(entry_contribution(1), 0.5);
        assert_eq!(entry_contribution(2), 1.0 / 3.0);
    }

    #[test]
    fn cb_formula_matches_hand_computation() {
        // Degree 4 → 6 pairs. One edge pair (0), one pair with 2
        // connectors (1/3), one with 1 connector (1/2); three absent (1).
        let mut m = PairMap::default();
        m.set_edge(1, 2);
        m.add_connector(3, 4);
        m.add_connector(3, 4);
        m.add_connector(5, 6);
        let cb = m.cb_given_degree(4);
        let expect = 3.0 + 0.0 + 1.0 / 3.0 + 0.5;
        assert!((cb - expect).abs() < 1e-12, "cb = {cb}");
    }

    #[test]
    fn bound_tightens_monotonically() {
        let mut m = PairMap::default();
        let d = 5;
        let mut prev = m.cb_given_degree(d);
        m.add_connector(0, 1);
        let b1 = m.cb_given_degree(d);
        assert!(b1 < prev);
        prev = b1;
        m.add_connector(0, 1);
        let b2 = m.cb_given_degree(d);
        assert!(b2 < prev);
        prev = b2;
        m.set_edge(2, 3);
        assert!(m.cb_given_degree(d) < prev);
    }

    #[test]
    fn det_variant_agrees_and_is_order_independent() {
        // Two maps with identical content built in opposite orders.
        let mut a = PairMap::default();
        let mut b = PairMap::default();
        let pairs: [(VertexId, VertexId); 4] = [(0, 1), (2, 3), (4, 5), (6, 7)];
        for &(i, j) in &pairs {
            a.add_connector(i, j);
        }
        for &(i, j) in pairs.iter().rev() {
            b.add_connector(i, j);
        }
        a.set_edge(8, 9);
        b.set_edge(8, 9);
        let (da, db) = (a.cb_given_degree_det(6), b.cb_given_degree_det(6));
        assert_eq!(da, db, "bit-identical across construction orders");
        // Same value (up to association) as the hash-order variant.
        assert!((da - a.cb_given_degree(6)).abs() < 1e-12);
    }

    #[test]
    fn remove_connector_roundtrip() {
        let mut m = PairMap::default();
        m.add_connector(7, 9);
        m.add_connector(7, 9);
        assert_eq!(m.get(7, 9), Some(2));
        assert_eq!(m.remove_connector(9, 7), 1);
        assert_eq!(m.remove_connector(7, 9), 0);
        assert_eq!(m.get(7, 9), None, "entry vanishes at zero");
    }

    #[test]
    fn store_totals() {
        let mut s = SMapStore::new(3);
        s.map_mut(0).set_edge(1, 2);
        s.map_mut(2).add_connector(0, 1);
        assert_eq!(s.total_entries(), 2);
        assert_eq!(s.map(1).len(), 0);
    }

    #[test]
    #[should_panic(expected = "missing entry")]
    fn remove_connector_missing_panics() {
        let mut m = PairMap::default();
        m.remove_connector(1, 2);
    }
}
