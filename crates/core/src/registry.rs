//! Enumerable registry of top-k engines.
//!
//! Every way this crate can answer "give me the top-k ego-betweenness
//! vertices" is registered here under a stable name, behind one uniform
//! closure signature. Harnesses (the `conformance` crate's differential
//! oracle layer, benchmark drivers, CLIs) *discover* engines by iterating
//! [`builtin_engines`] instead of hand-listing call sites — so a newly
//! added algorithm is cross-checked the moment it registers itself, and a
//! forgotten registration is a one-line fix rather than a silent coverage
//! hole.
//!
//! Every engine closure takes a [`Cancel`] token and may return
//! [`Cancelled`] from a coarse checkpoint (heap pop batch, vertex chunk,
//! sampling round) — the serving layer threads per-request deadlines and
//! disconnect detection through here so an abandoned exact search stops
//! burning CPU. Harness code that has no deadline uses the infallible
//! [`RegisteredEngine::topk`], which passes [`Cancel::never`].
//!
//! Crates higher in the dependency graph (parallel, dynamic) cannot
//! register here without inverting dependencies; they expose the same
//! shape by constructing [`RegisteredEngine`] values of their own, which
//! the conformance layer appends to this list.

use crate::approx::{approx_topk_cancellable, ApproxParams, SamplingStrategy};
use crate::base_bsearch;
use crate::cancel::{Cancel, Cancelled};
use crate::compute_all::compute_all_cancellable;
use crate::naive::compute_all_naive_cancellable;
use crate::opt_search::{opt_bsearch_cancellable, OptParams};
use crate::stats::SearchStats;
use crate::topk::TopkResult;
use egobtw_graph::{CsrGraph, HybridConfig, Relabeling, VertexId};

/// Uniform engine signature: graph in, ranked `(vertex, CB)` entries out —
/// unless the token cancels the run first.
pub type EngineFn =
    Box<dyn Fn(&CsrGraph, usize, &Cancel) -> Result<Vec<(VertexId, f64)>, Cancelled> + Send + Sync>;

/// Engine signature that also reports work counters: entries plus the
/// run's [`crate::SearchStats`], bundled as a [`TopkResult`]. Engines
/// registered through this shape surface the paper's Table II metric
/// (exact computations) to callers that want it — the serving layer's
/// telemetry — while [`RegisteredEngine::topk_cancellable`] keeps
/// returning bare entries for harnesses that don't.
pub type StatsEngineFn =
    Box<dyn Fn(&CsrGraph, usize, &Cancel) -> Result<TopkResult, Cancelled> + Send + Sync>;

enum EngineImpl {
    /// Entries only; work counters default to zero.
    Plain(EngineFn),
    /// Entries plus honest work counters.
    WithStats(StatsEngineFn),
}

/// What an engine promises about its output — the conformance layer picks
/// its comparator from this tag.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EngineKind {
    /// Bit-for-bit agreement with the reference is required.
    Exact,
    /// Randomized engine with an (ε, δ) rank guarantee: membership and
    /// scores are checked with statistical tolerance, not equality.
    Approx {
        /// Rank-displacement tolerance ε.
        eps: f64,
        /// Failure probability budget δ.
        delta: f64,
    },
}

/// One named engine in the registry.
pub struct RegisteredEngine {
    name: String,
    kind: EngineKind,
    run: EngineImpl,
}

impl RegisteredEngine {
    /// Wraps a closure under a stable engine name (an exact engine).
    pub fn new(name: impl Into<String>, run: EngineFn) -> Self {
        RegisteredEngine {
            name: name.into(),
            kind: EngineKind::Exact,
            run: EngineImpl::Plain(run),
        }
    }

    /// Wraps a closure with an explicit output contract.
    pub fn with_kind(name: impl Into<String>, kind: EngineKind, run: EngineFn) -> Self {
        RegisteredEngine {
            name: name.into(),
            kind,
            run: EngineImpl::Plain(run),
        }
    }

    /// Wraps a stats-reporting closure under a stable engine name (an
    /// exact engine that also surfaces its work counters).
    pub fn new_with_stats(name: impl Into<String>, run: StatsEngineFn) -> Self {
        RegisteredEngine {
            name: name.into(),
            kind: EngineKind::Exact,
            run: EngineImpl::WithStats(run),
        }
    }

    /// The engine's stable name (used in reports and failure messages).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The engine's output contract.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Runs the engine: top-`k` entries sorted by descending `CB`
    /// (ascending vertex id among exact float ties).
    pub fn topk(&self, g: &CsrGraph, k: usize) -> Vec<(VertexId, f64)> {
        self.topk_cancellable(g, k, &Cancel::never())
            .expect("a never-cancelled engine run cannot be cancelled")
    }

    /// [`RegisteredEngine::topk`] under a cancellation token: returns
    /// [`Cancelled`] once the engine observes an expired deadline or a
    /// fired flag at one of its checkpoints.
    pub fn topk_cancellable(
        &self,
        g: &CsrGraph,
        k: usize,
        cancel: &Cancel,
    ) -> Result<Vec<(VertexId, f64)>, Cancelled> {
        match &self.run {
            EngineImpl::Plain(run) => run(g, k, cancel),
            EngineImpl::WithStats(run) => Ok(run(g, k, cancel)?.entries),
        }
    }

    /// [`RegisteredEngine::topk_cancellable`] keeping the work counters:
    /// engines registered with [`RegisteredEngine::new_with_stats`]
    /// report their real [`SearchStats`]; plain engines report zeros.
    pub fn topk_with_stats_cancellable(
        &self,
        g: &CsrGraph,
        k: usize,
        cancel: &Cancel,
    ) -> Result<TopkResult, Cancelled> {
        match &self.run {
            EngineImpl::Plain(run) => Ok(TopkResult {
                entries: run(g, k, cancel)?,
                stats: SearchStats::default(),
            }),
            EngineImpl::WithStats(run) => run(g, k, cancel),
        }
    }
}

impl std::fmt::Debug for RegisteredEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisteredEngine")
            .field("name", &self.name)
            .finish()
    }
}

/// Ranks a full per-vertex score vector into top-k entries, with the same
/// ordering contract as the search engines (descending score, ascending id
/// on exact ties). Shared by every all-vertices engine adapter.
pub fn topk_from_scores(scores: &[f64], k: usize) -> Vec<(VertexId, f64)> {
    let mut v: Vec<(VertexId, f64)> = scores
        .iter()
        .enumerate()
        .map(|(i, &s)| (i as VertexId, s))
        .collect();
    v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

/// Every engine implemented in this crate, under its stable name:
///
/// * `core::naive` — per-ego bitset baseline over all vertices;
/// * `core::compute_all` — edge-centric shared-work pass over all vertices;
/// * `core::base_search` — BaseBSearch (Algorithm 1);
/// * `core::opt_search(θ=…)` — OptBSearch (Algorithm 2) at three gradient
///   ratios, since θ must never change answers;
/// * `core::compute_all(degree-relabel)` — the hybrid fast path: run on
///   the degree-descending relabeled twin, inverse-map results back;
/// * `core::compute_all(bitmap-dense)` — rebuilt under
///   [`HybridConfig::dense`], forcing every intersection through the
///   slice×bitmap / bitmap×bitmap kernels (conformance coverage for the
///   bitmap paths, which real thresholds rarely reach on small graphs);
/// * `core::opt_search(θ=1.05, degree-relabel)` — OptBSearch on the
///   relabeled twin, since renaming must never change answers;
/// * `core::approx(uniform, ε=0.05, δ=0.01)` and
///   `core::approx(hub-strat, ε=0.05, δ=0.01)` — the adaptive sampling
///   engines ([`EngineKind::Approx`]): egos small enough to enumerate are
///   exact, the rest carry empirical-Bernstein confidence intervals; the
///   conformance layer checks them with statistical tolerance.
pub fn builtin_engines() -> Vec<RegisteredEngine> {
    let mut engines = vec![
        RegisteredEngine::new(
            "core::naive",
            Box::new(|g: &CsrGraph, k, cancel: &Cancel| {
                Ok(topk_from_scores(
                    &compute_all_naive_cancellable(g, cancel)?,
                    k,
                ))
            }) as EngineFn,
        ),
        RegisteredEngine::new_with_stats(
            "core::compute_all",
            Box::new(|g: &CsrGraph, k, cancel: &Cancel| {
                let (scores, stats) = compute_all_cancellable(g, cancel)?;
                Ok(TopkResult {
                    entries: topk_from_scores(&scores, k),
                    stats,
                })
            }) as StatsEngineFn,
        ),
        RegisteredEngine::new_with_stats(
            "core::base_search",
            // BaseBSearch's frozen-bound sweep has no natural mid-run
            // checkpoint; it honors cancellation at entry only.
            Box::new(|g: &CsrGraph, k, cancel: &Cancel| {
                cancel.check()?;
                Ok(base_bsearch(g, k))
            }) as StatsEngineFn,
        ),
    ];
    for theta in [1.0, 1.05, 2.0] {
        engines.push(RegisteredEngine::new_with_stats(
            format!("core::opt_search(θ={theta:.2})"),
            Box::new(move |g: &CsrGraph, k, cancel: &Cancel| {
                opt_bsearch_cancellable(g, k, OptParams { theta }, cancel)
            }) as StatsEngineFn,
        ));
    }
    engines.push(RegisteredEngine::new_with_stats(
        "core::compute_all(degree-relabel)",
        Box::new(|g: &CsrGraph, k, cancel: &Cancel| {
            let relab = Relabeling::degree_descending(g);
            let rg = relab.apply(g);
            let (scores, stats) = compute_all_cancellable(&rg, cancel)?;
            Ok(TopkResult {
                entries: topk_from_scores(&relab.restore_scores(&scores), k),
                stats,
            })
        }) as StatsEngineFn,
    ));
    engines.push(RegisteredEngine::new(
        "core::compute_all(bitmap-dense)",
        Box::new(|g: &CsrGraph, k, cancel: &Cancel| {
            let dense = g.with_hybrid_config(&HybridConfig::dense());
            Ok(topk_from_scores(
                &compute_all_cancellable(&dense, cancel)?.0,
                k,
            ))
        }) as EngineFn,
    ));
    engines.push(RegisteredEngine::new_with_stats(
        "core::opt_search(θ=1.05, degree-relabel)",
        Box::new(|g: &CsrGraph, k, cancel: &Cancel| {
            let relab = Relabeling::degree_descending(g);
            let rg = relab.apply(g);
            let result = opt_bsearch_cancellable(&rg, k, OptParams { theta: 1.05 }, cancel)?;
            Ok(TopkResult {
                entries: relab.restore_topk(result.entries),
                stats: result.stats,
            })
        }) as StatsEngineFn,
    ));
    for (tag, strategy) in [
        ("uniform", SamplingStrategy::Uniform),
        ("hub-strat", SamplingStrategy::HubStratified),
    ] {
        let params = ApproxParams {
            strategy,
            ..ApproxParams::default()
        };
        engines.push(RegisteredEngine::with_kind(
            format!(
                "core::approx({tag}, ε={:.2}, δ={:.2})",
                params.eps, params.delta
            ),
            EngineKind::Approx {
                eps: params.eps,
                delta: params.delta,
            },
            Box::new(move |g: &CsrGraph, k, cancel: &Cancel| {
                Ok(approx_topk_cancellable(g, k, &params, cancel)?.topk_entries())
            }) as EngineFn,
        ));
    }
    engines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::compute_all_naive;
    use egobtw_gen::classic;

    #[test]
    fn names_are_unique_and_prefixed() {
        let engines = builtin_engines();
        let mut names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert!(names.iter().all(|n| n.starts_with("core::")));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), engines.len(), "duplicate engine name");
    }

    #[test]
    fn every_builtin_agrees_on_karate_top5() {
        let g = classic::karate_club();
        let reference = topk_from_scores(&compute_all_naive(&g), 5);
        for e in builtin_engines() {
            let got = e.topk(&g, 5);
            assert_eq!(got.len(), 5, "{}", e.name());
            for (rank, ((_, a), (_, b))) in got.iter().zip(&reference).enumerate() {
                assert!((a - b).abs() < 1e-9, "{} rank {rank}: {a} vs {b}", e.name());
            }
        }
    }

    #[test]
    fn every_builtin_respects_a_fired_cancel_token() {
        let g = classic::karate_club();
        let token = Cancel::new();
        token.cancel();
        for e in builtin_engines() {
            assert!(
                matches!(e.topk_cancellable(&g, 5, &token), Err(Cancelled)),
                "{} ignored a fired cancel token",
                e.name()
            );
        }
    }

    #[test]
    fn stats_path_matches_plain_path_and_reports_work() {
        let g = classic::karate_club();
        for e in builtin_engines() {
            let plain = e.topk_cancellable(&g, 5, &Cancel::never()).unwrap();
            let with_stats = e
                .topk_with_stats_cancellable(&g, 5, &Cancel::never())
                .unwrap();
            assert_eq!(plain, with_stats.entries, "{}", e.name());
            // The search engines must report honest work counters; plain
            // registrations legitimately report zeros.
            if e.name().starts_with("core::opt_search") || e.name() == "core::base_search" {
                assert!(
                    with_stats.stats.exact_computations > 0,
                    "{} reported no exact computations",
                    e.name()
                );
            }
        }
    }

    #[test]
    fn topk_from_scores_ties_prefer_small_ids() {
        let out = topk_from_scores(&[1.0, 3.0, 3.0, 0.5], 3);
        assert_eq!(out, vec![(1, 3.0), (2, 3.0), (0, 1.0)]);
    }

    #[test]
    fn topk_from_scores_truncates_and_handles_k_over_n() {
        assert_eq!(topk_from_scores(&[2.0, 1.0], 0), vec![]);
        assert_eq!(topk_from_scores(&[2.0, 1.0], 5).len(), 2);
    }
}
