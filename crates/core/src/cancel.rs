//! Cooperative cancellation for long-running engine computations.
//!
//! A [`Cancel`] token combines an explicit flag (set by a caller — e.g. a
//! server noticing the requesting client disconnected) with an optional
//! deadline. Engines poll it at coarse checkpoints — per sampling round,
//! per heap pop batch, per vertex chunk — so an abandoned request stops
//! burning CPU within a bounded amount of extra work instead of running
//! to completion for nobody. Polling is cooperative by design: the
//! checkpoints sit outside the hot inner kernels, so the cost of carrying
//! a token is a relaxed atomic load every few hundred microseconds of
//! work, unmeasurable next to the work itself.
//!
//! [`Cancel::never`] is the zero-cost default every infallible public
//! entry point uses: no allocation, every check is a branch on `None`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The computation was cancelled (explicitly or by deadline) before it
/// finished; any partial result has been discarded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("computation cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// A cheaply clonable cancellation token: an optional shared flag plus an
/// optional deadline. Clones share the flag (cancelling one cancels all)
/// but carry their own deadline, so one connection-scoped token can spawn
/// per-request deadlines via [`Cancel::with_deadline`].
#[derive(Clone, Debug, Default)]
pub struct Cancel {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl Cancel {
    /// A token that never cancels; checks compile to a branch on `None`.
    pub fn never() -> Cancel {
        Cancel::default()
    }

    /// A fresh cancellable token with no deadline.
    pub fn new() -> Cancel {
        Cancel {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: None,
        }
    }

    /// A derived token sharing this one's flag but expiring at `deadline`
    /// (whichever of the two deadlines is earlier wins).
    pub fn with_deadline(&self, deadline: Instant) -> Cancel {
        Cancel {
            flag: self.flag.clone(),
            deadline: Some(match self.deadline {
                Some(existing) => existing.min(deadline),
                None => deadline,
            }),
        }
    }

    /// Fires the explicit flag; every clone sharing it observes the
    /// cancellation at its next check. A no-op on [`Cancel::never`].
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the *explicit* flag fired (distinguishes a caller-initiated
    /// cancel — e.g. client disconnect — from a deadline expiry).
    pub fn is_flagged(&self) -> bool {
        self.flag
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Whether the token is cancelled (flag fired or deadline passed).
    pub fn is_cancelled(&self) -> bool {
        self.is_flagged() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The checkpoint engines call: `Err(Cancelled)` once cancelled.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn never_never_cancels() {
        let c = Cancel::never();
        c.cancel(); // no-op
        assert!(!c.is_cancelled());
        assert!(c.check().is_ok());
    }

    #[test]
    fn explicit_cancel_propagates_to_clones() {
        let c = Cancel::new();
        let clone = c.clone();
        assert!(c.check().is_ok());
        clone.cancel();
        assert!(c.is_flagged());
        assert_eq!(c.check(), Err(Cancelled));
    }

    #[test]
    fn deadline_expires_without_a_flag() {
        let c = Cancel::new().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(!c.is_flagged(), "deadline expiry is not an explicit cancel");
        assert!(c.is_cancelled());
        assert_eq!(c.check(), Err(Cancelled));
    }

    #[test]
    fn derived_deadline_keeps_the_earlier_one() {
        let near = Instant::now() - Duration::from_millis(1);
        let far = Instant::now() + Duration::from_secs(3600);
        let c = Cancel::new().with_deadline(near).with_deadline(far);
        assert!(c.is_cancelled(), "tightening must not loosen the deadline");
        let base = Cancel::new().with_deadline(far);
        assert!(!base.is_cancelled());
    }
}
