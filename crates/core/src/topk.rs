//! Ordered-float utilities and the bounded top-k accumulator.

use egobtw_graph::VertexId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// `f64` wrapper with a total order (`f64::total_cmp`), so scores can live
/// in heaps. Ego-betweenness values are finite and non-negative.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Keeps the `k` best `(vertex, score)` pairs seen so far, exposing the
/// current k-th score as the pruning threshold (`min CB(R)` in the paper).
///
/// Ties on score are broken toward the smaller vertex id staying, purely
/// for determinism; any tie-broken answer is a valid top-k set.
#[derive(Clone, Debug)]
pub struct TopKSet {
    k: usize,
    // Min-heap of (score, vertex): the root is the eviction candidate.
    heap: BinaryHeap<Reverse<(OrdF64, Reverse<VertexId>)>>,
}

impl TopKSet {
    /// Accumulator for the best `k` entries.
    pub fn new(k: usize) -> Self {
        TopKSet {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of held entries (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` once `k` entries are held.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Current minimum score in the set (`min_{v∈R} CB(v)`), if non-empty.
    pub fn min_score(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse((OrdF64(s), _))| *s)
    }

    /// Offers an entry; returns `true` if it was admitted (possibly
    /// evicting the current minimum).
    pub fn offer(&mut self, v: VertexId, score: f64) -> bool {
        if self.k == 0 {
            return false;
        }
        let item = Reverse((OrdF64(score), Reverse(v)));
        if self.heap.len() < self.k {
            self.heap.push(item);
            return true;
        }
        if item < *self.heap.peek().unwrap() {
            // `Reverse` flips: smaller item == larger (score, id).
            self.heap.pop();
            self.heap.push(item);
            true
        } else {
            false
        }
    }

    /// Consumes the set, returning entries sorted by descending score
    /// (ascending vertex id among exact ties).
    pub fn into_sorted_vec(self) -> Vec<(VertexId, f64)> {
        let mut v: Vec<(VertexId, f64)> = self
            .heap
            .into_iter()
            .map(|Reverse((OrdF64(s), Reverse(id)))| (id, s))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// Outcome of a top-k search: the ranked answers plus instrumentation.
#[derive(Clone, Debug)]
pub struct TopkResult {
    /// `(vertex, CB)` sorted by descending `CB`.
    pub entries: Vec<(VertexId, f64)>,
    /// Work counters (see [`crate::stats::SearchStats`]).
    pub stats: crate::stats::SearchStats,
}

impl TopkResult {
    /// Just the vertex ids, in rank order.
    pub fn vertices(&self) -> Vec<VertexId> {
        self.entries.iter().map(|&(v, _)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_best_k() {
        let mut t = TopKSet::new(3);
        for (v, s) in [(0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0), (4, 0.5)] {
            t.offer(v, s);
        }
        let out = t.into_sorted_vec();
        assert_eq!(out, vec![(1, 5.0), (3, 4.0), (2, 3.0)]);
    }

    #[test]
    fn min_score_tracks_kth() {
        let mut t = TopKSet::new(2);
        assert_eq!(t.min_score(), None);
        t.offer(0, 2.0);
        t.offer(1, 7.0);
        assert_eq!(t.min_score(), Some(2.0));
        assert!(t.offer(2, 3.0));
        assert_eq!(t.min_score(), Some(3.0));
        assert!(!t.offer(3, 1.0), "worse than the k-th is rejected");
    }

    #[test]
    fn tie_break_is_deterministic() {
        let mut t = TopKSet::new(1);
        t.offer(5, 1.0);
        // Equal score, smaller id: admitted (smaller id preferred).
        assert!(t.offer(2, 1.0));
        assert_eq!(t.into_sorted_vec(), vec![(2, 1.0)]);
    }

    #[test]
    fn zero_k() {
        let mut t = TopKSet::new(0);
        assert!(!t.offer(0, 9.0));
        assert!(t.into_sorted_vec().is_empty());
    }

    #[test]
    fn ordf64_total_order() {
        assert!(OrdF64(1.0) < OrdF64(2.0));
        assert!(OrdF64(-0.0) < OrdF64(0.0));
        assert_eq!(OrdF64(3.5).cmp(&OrdF64(3.5)), std::cmp::Ordering::Equal);
    }
}
