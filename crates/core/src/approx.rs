//! Approximate top-k with (ε, δ) rank guarantees via adaptive pair sampling.
//!
//! Exact engines evaluate every non-adjacent neighbor pair of every ego —
//! cubic-ish in hub neighborhoods. This module instead *samples* pairs per
//! ego: each sampled pair contributes `X ∈ [0, 1]` (`0` if adjacent, else
//! `1/(1+c)` with `c` common connectors), so `CB(p) = P_p · E[X]` where
//! `P_p = C(d(p), 2)` is the ego's pair count. An empirical-Bernstein
//! confidence interval (Audibert–Munos–Szepesvári; see also Mnih et al.'s
//! EBStop) around the sample mean then drives three adaptive decisions per
//! round:
//!
//! * **reject** egos whose upper bound falls below `λ`, the k-th largest
//!   lower bound seen so far (hubs' a-priori cap `CB ≤ P_p` rejects most
//!   small egos before a single sample is drawn);
//! * **settle** egos whose lower bound clears the (k+1)-th largest upper
//!   bound — provable top-k members that stop at *relative* precision
//!   (`width ≤ ε·max(1, lo)`) instead of grinding toward the absolute
//!   boundary tolerance; this is what makes well-separated hubs cheap
//!   (a few thousand samples against millions of pairs);
//! * **resolve** the rest once their CI width shrinks below
//!   `(ε/2)·max(1, λ)`, which bounds the rank displacement of the final
//!   selection by `ε·max(1, c*_k)` (sum of two half-criteria widths).
//!
//! Returned entries whose lower bound additionally clears every
//! non-returned upper bound are flagged **certified** — provably true
//! top-k members conditional on all CIs holding.
//!
//! The failure budget `δ` is union-bounded over vertices and geometric
//! sampling rounds (`δ' = δ / (n · r · (r+1))`, `Σ_r 1/(r(r+1)) = 1`), and
//! per-vertex CIs are *intersected* across rounds so bounds tighten
//! monotonically and a rejection can never need to be revisited. Egos with
//! `P_p ≤ exact_pair_cutoff` are evaluated exactly (zero-width CI) — on
//! small graphs the sampler degrades gracefully into the exact algorithm.
//!
//! Determinism: every ego owns an RNG seeded from `seed ^ mix(vertex)`, and
//! rounds are barrier-synchronized, so output is bit-identical across
//! thread counts and process runs for a fixed seed.
//!
//! [`ApproxFault`] plants the conformance suite's mutants *inside* this
//! engine (mirroring the delta-maintainer fault pattern), so the
//! statistical tier can prove it would catch a real implementation bug.

use crate::cancel::{Cancel, Cancelled};
use crate::naive::ego_betweenness_of;
use egobtw_graph::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the per-round sampling budget is spread across still-active egos.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Every active ego draws the same batch each round.
    Uniform,
    /// Batches proportional to each ego's pair count `P_p` (hubs dominate
    /// both cost and rank, so they get the samples), with a floor so small
    /// active egos still make progress.
    HubStratified,
}

/// Planted faults for the conformance mutation gate. `None` is the honest
/// engine; the others are the three bugs the statistical tier must catch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ApproxFault {
    /// Honest operation.
    #[default]
    None,
    /// Biased sampler: silently drops the highest-degree egos from
    /// candidacy, as if the stratifier's top bucket were skipped.
    SkipHighDegree,
    /// Stopping rule ignores the empirical-variance term of the
    /// Bernstein bound — CIs are too narrow, so rejection and
    /// certification fire on insufficient evidence.
    NoVarianceTerm,
    /// Off-by-one in the confidence boundary: the rejection threshold λ
    /// reads the (k−1)-th largest lower bound instead of the k-th (a
    /// 0-vs-1-indexed rank slip), so egos are discarded against a
    /// boundary one rank too high and true top-k members get rejected.
    BoundaryOffByOne,
}

/// Tuning knobs for [`approx_topk`].
#[derive(Clone, Copy, Debug)]
pub struct ApproxParams {
    /// Rank-displacement tolerance: returned scores are ≥
    /// `c*_k − ε·max(1, c*_k)` with probability ≥ 1 − δ.
    pub eps: f64,
    /// Total failure probability budget across all CIs ever formed.
    pub delta: f64,
    /// RNG seed; fixes the entire output bit-for-bit.
    pub seed: u64,
    /// Budget-allocation strategy across egos.
    pub strategy: SamplingStrategy,
    /// Worker threads for the per-round sampling sweep (rounds are
    /// barrier-synchronized, so this never changes the output).
    pub threads: usize,
    /// Egos with at most this many pairs are computed exactly instead of
    /// sampled. `0` forces sampling everywhere (used by the conformance
    /// tier so small scenario graphs still exercise the estimator).
    pub exact_pair_cutoff: u64,
    /// First-round batch size per active ego (doubles each round).
    pub initial_batch: u64,
    /// Hard cap on sampling rounds; hitting it sets
    /// [`ApproxTopk::budget_exhausted`] instead of looping forever.
    pub max_rounds: u32,
    /// Once an ego has drawn `factor · P_p` samples it is finished
    /// exactly instead (sampling past that costs more than enumerating).
    /// The default `2.0` caps total work at a small constant multiple of
    /// the exact algorithm; the conformance tier raises it to keep egos
    /// in the sampling regime longer.
    pub exact_fallback_factor: f64,
}

impl ApproxParams {
    /// Parameters for a target `(ε, δ)` with default machinery knobs.
    pub fn new(eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps={eps} must be positive");
        assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta={delta}");
        ApproxParams {
            eps,
            delta,
            seed: 0xE60B_7A17,
            strategy: SamplingStrategy::Uniform,
            threads: 1,
            exact_pair_cutoff: 256,
            initial_batch: 64,
            max_rounds: 48,
            exact_fallback_factor: 2.0,
        }
    }
}

impl Default for ApproxParams {
    fn default() -> Self {
        ApproxParams::new(0.05, 0.01)
    }
}

/// One returned vertex with its confidence interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ApproxEntry {
    /// The vertex.
    pub vertex: VertexId,
    /// Point estimate of `CB` (exact value for cutoff egos).
    pub estimate: f64,
    /// Lower confidence bound on the true `CB`.
    pub lo: f64,
    /// Upper confidence bound on the true `CB`.
    pub hi: f64,
    /// `true` when `lo` clears every non-returned vertex's upper bound —
    /// a provable top-k member conditional on all CIs holding.
    pub certified: bool,
    /// `true` when the value was computed exactly (zero-width CI).
    pub exact: bool,
}

/// Result of [`approx_topk`]: ranked entries plus the evidence needed by
/// the statistical conformance comparator.
#[derive(Clone, Debug)]
pub struct ApproxTopk {
    /// Top-k entries, descending by estimate (ascending vertex on ties).
    pub entries: Vec<ApproxEntry>,
    /// Largest upper confidence bound among *non-returned* vertices —
    /// the certification boundary the comparator re-checks.
    pub uncovered_hi: f64,
    /// Worst-case rank displacement of any returned entry, conditional on
    /// every CI holding: max returned *unsettled* CI width + max
    /// non-returned unrejected CI width. Settled entries are provable
    /// members and cannot be displaced, so their (relative-precision)
    /// widths do not contribute.
    pub rank_slack: f64,
    /// Total pair samples drawn across all egos and rounds.
    pub samples_drawn: u64,
    /// Sampling rounds executed before stopping (the "stopping epoch").
    pub rounds: u32,
    /// Set when `max_rounds` fired before every ego resolved; the CIs are
    /// still valid but `rank_slack` may exceed `ε·max(1, λ)`.
    pub budget_exhausted: bool,
}

impl ApproxTopk {
    /// The plain `(vertex, estimate)` view used by the engine registry.
    pub fn topk_entries(&self) -> Vec<(VertexId, f64)> {
        self.entries
            .iter()
            .map(|e| (e.vertex, e.estimate))
            .collect()
    }
}

/// Empirical-Bernstein half-width for a mean of `t` i.i.d. samples in
/// `[0, 1]` with empirical variance `variance`, at confidence `1 − δ'`:
///
/// ```text
/// h = sqrt(2·V·ln(3/δ') / t) + 3·ln(3/δ') / t
/// ```
pub fn eb_half_width(variance: f64, t: u64, delta_prime: f64) -> f64 {
    assert!(t > 0, "half-width needs at least one sample");
    let ln_term = (3.0 / delta_prime).ln();
    let tf = t as f64;
    (2.0 * variance.max(0.0) * ln_term / tf).sqrt() + 3.0 * ln_term / tf
}

/// Per-round confidence budget: `δ / (n · r · (r+1))` for round `r ≥ 1`,
/// so the union over all vertices and all rounds telescopes to `δ`.
pub fn round_delta(delta: f64, n: usize, round: u32) -> f64 {
    let r = f64::from(round.max(1));
    delta / (n.max(1) as f64 * r * (r + 1.0))
}

/// `ln C(n, x)` via cumulative log-factorials (stable std has no
/// `ln_gamma`; exact enough for the tail sums used here).
fn ln_choose(n: u64, x: u64) -> f64 {
    debug_assert!(x <= n);
    let ln_fact = |m: u64| -> f64 { (2..=m).map(|i| (i as f64).ln()).sum() };
    ln_fact(n) - ln_fact(x) - ln_fact(n - x)
}

/// One-sided binomial tail `P[X ≥ x]` for `X ~ Bin(n, p)`. Used by the
/// repeated-trials driver: observing `x` failures in `n` trials is
/// consistent with a true failure rate ≤ `p` at level `α` iff this tail
/// probability is ≥ `α`.
pub fn binomial_tail_ge(n: u64, x: u64, p: f64) -> f64 {
    if x == 0 {
        return 1.0;
    }
    if x > n {
        return 0.0;
    }
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let (lp, lq) = (p.ln(), (1.0 - p).ln());
    let mut tail = 0.0;
    for i in x..=n {
        tail += (ln_choose(n, i) + i as f64 * lp + (n - i) as f64 * lq).exp();
    }
    tail.min(1.0)
}

/// Clopper–Pearson upper confidence limit on a binomial proportion at
/// confidence `1 − α`: the rate `U` solving `P[X ≤ x | U] = α`, i.e.
/// `P[X ≥ x+1 | U] = 1 − α`. Bisection on the exact tail; for `x = 0`
/// this reproduces the `1 − α^(1/n)` "rule of three" limit.
pub fn clopper_pearson_upper(x: u64, n: u64, alpha: f64) -> f64 {
    assert!(n > 0 && x <= n);
    if x >= n {
        return 1.0;
    }
    let (mut lo, mut hi) = (x as f64 / n as f64, 1.0);
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        // The tail P[X ≥ x+1 | p] increases with p.
        if binomial_tail_ge(n, x + 1, mid) < 1.0 - alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// SplitMix64 finalizer — decorrelates per-ego RNG streams from the
/// sequential seeds `seed ^ v`.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-ego sampling state. `lo`/`hi` are intersected across rounds so the
/// interval only ever tightens (and remains a valid CI under the round
/// union bound).
struct EgoState {
    vertex: VertexId,
    pairs: f64,
    /// Running sample count, sum, and sum of squares of `X`.
    t: u64,
    sum: f64,
    sum_sq: f64,
    lo: f64,
    hi: f64,
    rng: StdRng,
    active: bool,
    rejected: bool,
    /// Stopped via the membership certificate (`lo` cleared the (k+1)-th
    /// largest upper bound): a provable top-k member whose CI is only
    /// relative-precision wide, so it is excluded from `rank_slack`.
    settled: bool,
    exact: bool,
}

impl EgoState {
    fn mean(&self) -> f64 {
        if self.t == 0 {
            0.0
        } else {
            self.sum / self.t as f64
        }
    }

    /// Point estimate of CB, clamped into the intersected CI (the running
    /// mean can drift outside an interval locked in by an earlier round).
    fn estimate(&self) -> f64 {
        (self.pairs * self.mean()).clamp(self.lo, self.hi)
    }

    fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Evaluates one sampled pair of `p`'s (sorted) neighbor list: `0` for an
/// adjacent pair, else `1/(1+c)` with `c` the common connectors inside the
/// ego (common neighbors of the pair that are also neighbors of `p`).
fn pair_contribution(
    g: &CsrGraph,
    p: VertexId,
    nbrs: &[VertexId],
    i: usize,
    j: usize,
    scratch: &mut Vec<VertexId>,
) -> f64 {
    let (u, v) = (nbrs[i], nbrs[j]);
    if g.has_edge(u, v) {
        return 0.0;
    }
    scratch.clear();
    g.common_neighbors_into(u, v, scratch);
    // `p` itself is always a common neighbor of two of its neighbors but
    // is not a connector; other common neighbors count only if in N(p).
    let c = scratch
        .iter()
        .filter(|&&w| w != p && g.has_edge(w, p))
        .count();
    1.0 / (c as f64 + 1.0)
}

/// Draws `batch` pair samples for one ego and folds them into its state.
/// Rejection-samples unordered index pairs, so every pair is uniform.
fn sample_batch(g: &CsrGraph, st: &mut EgoState, nbrs: &[VertexId], batch: u64) -> u64 {
    let d = nbrs.len();
    let mut scratch: Vec<VertexId> = Vec::new();
    for _ in 0..batch {
        let i = st.rng.random_range(0..d);
        let mut j = st.rng.random_range(0..d);
        while j == i {
            j = st.rng.random_range(0..d);
        }
        let x = pair_contribution(g, st.vertex, nbrs, i.min(j), i.max(j), &mut scratch);
        st.t += 1;
        st.sum += x;
        st.sum_sq += x * x;
    }
    batch
}

/// Approximate top-k ego-betweenness with an (ε, δ) rank guarantee.
///
/// With probability ≥ `1 − δ` (over the sampler's own randomness — the
/// graph is arbitrary): every true CB lies inside its reported `[lo, hi]`,
/// every `certified` entry is a member of a true top-k set (tie-aware),
/// every returned entry's true CB is at least
/// `c*_k − rank_slack ≥ c*_k − ε·max(1, c*_k)` (the latter whenever
/// `budget_exhausted` is false), and every returned estimate is within
/// `ε·max(1, c*_k, true CB)` of its vertex's true CB (settled members
/// stop at relative precision; everything else at the absolute boundary
/// tolerance), where `c*_k` is the true k-th score.
pub fn approx_topk(g: &CsrGraph, k: usize, params: &ApproxParams) -> ApproxTopk {
    approx_topk_with_fault(g, k, params, ApproxFault::None)
}

/// [`approx_topk`] with a planted fault — the conformance mutation gate's
/// entry point. `ApproxFault::None` is byte-for-byte the honest engine.
pub fn approx_topk_with_fault(
    g: &CsrGraph,
    k: usize,
    params: &ApproxParams,
    fault: ApproxFault,
) -> ApproxTopk {
    approx_topk_inner(g, k, params, fault, &Cancel::never())
        .expect("a never-cancelled sampler cannot be cancelled")
}

/// [`approx_topk`] with cooperative cancellation, polled at every adaptive
/// round boundary (rounds are the sampler's natural checkpoint: CI state
/// is consistent there and the per-round cost is bounded by the batch
/// schedule). Cancelling mid-round wastes at most that round's batches.
pub fn approx_topk_cancellable(
    g: &CsrGraph,
    k: usize,
    params: &ApproxParams,
    cancel: &Cancel,
) -> Result<ApproxTopk, Cancelled> {
    approx_topk_inner(g, k, params, ApproxFault::None, cancel)
}

fn approx_topk_inner(
    g: &CsrGraph,
    k: usize,
    params: &ApproxParams,
    fault: ApproxFault,
    cancel: &Cancel,
) -> Result<ApproxTopk, Cancelled> {
    let n = g.n();
    let k = k.min(n);
    let max_degree = (0..n as VertexId).map(|v| g.degree(v)).max().unwrap_or(0);

    // Candidate states: exact below the pair cutoff, sampled above.
    let mut samples_drawn = 0u64;
    let mut states: Vec<EgoState> = Vec::with_capacity(n);
    for v in 0..n as VertexId {
        let d = g.degree(v) as u64;
        let pairs = d * d.saturating_sub(1) / 2;
        if fault == ApproxFault::SkipHighDegree && max_degree >= 2 && g.degree(v) == max_degree {
            // Planted bug: the "top stratum" never enters candidacy.
            continue;
        }
        if pairs <= params.exact_pair_cutoff {
            let cb = ego_betweenness_of(g, v);
            states.push(EgoState {
                vertex: v,
                pairs: pairs as f64,
                t: 0,
                sum: 0.0,
                sum_sq: 0.0,
                lo: cb,
                hi: cb,
                rng: StdRng::seed_from_u64(0),
                active: false,
                rejected: false,
                settled: false,
                exact: true,
            });
        } else {
            states.push(EgoState {
                vertex: v,
                pairs: pairs as f64,
                t: 0,
                sum: 0.0,
                sum_sq: 0.0,
                lo: 0.0,
                hi: pairs as f64, // a-priori cap: CB(p) ≤ P_p
                rng: StdRng::seed_from_u64(params.seed ^ mix64(u64::from(v))),
                active: true,
                rejected: false,
                settled: false,
                exact: false,
            });
        }
    }

    // The rank the rejection boundary reads. The planted off-by-one fault
    // models a 0-vs-1-indexed slip: λ comes from the (k−1)-th largest
    // lower bound, one rank too aggressive.
    let boundary_rank = if fault == ApproxFault::BoundaryOffByOne {
        k.saturating_sub(1)
    } else {
        k
    };
    let kth_largest_lo = |states: &[EgoState]| -> f64 {
        if boundary_rank == 0 {
            return f64::INFINITY; // nothing to return: everything rejects
        }
        let mut lows: Vec<f64> = states
            .iter()
            .filter(|s| !s.rejected)
            .map(|s| s.lo)
            .collect();
        if lows.len() < boundary_rank {
            return 0.0;
        }
        lows.sort_by(|a, b| b.total_cmp(a));
        lows[boundary_rank - 1]
    };

    // (k+1)-th largest upper bound over every candidate: an ego whose
    // lower bound clears it has at most k−1 others that could possibly
    // outscore it — a provable top-k member under the CIs.
    let settle_boundary = |states: &[EgoState]| -> f64 {
        if states.len() <= k {
            return f64::NEG_INFINITY;
        }
        let nth = states.len() - (k + 1); // ascending position of the (k+1)-th largest
        let mut his: Vec<f64> = states.iter().map(|s| s.hi).collect();
        *his.select_nth_unstable_by(nth, |a, b| a.total_cmp(b)).1
    };

    let mut rounds = 0u32;
    let mut budget_exhausted = false;
    let threads = params.threads.max(1);

    loop {
        cancel.check()?;
        // Reject / settle / resolve against the current confidence
        // boundaries λ and H_{k+1}.
        let lambda = kth_largest_lo(&states);
        let resolve_width = 0.5 * params.eps * lambda.max(1.0);
        let settle_hi = settle_boundary(&states);
        for st in states.iter_mut().filter(|s| s.active) {
            if st.hi < lambda {
                st.active = false;
                st.rejected = true;
            } else if st.t > 0 && st.width() <= resolve_width {
                st.active = false;
            } else if st.t > 0 && st.lo >= settle_hi && st.width() <= params.eps * st.lo.max(1.0) {
                // Provable member at relative precision: stop sampling
                // long before the absolute boundary tolerance is reached.
                st.active = false;
                st.settled = true;
            }
        }
        if !states.iter().any(|s| s.active) {
            break;
        }
        if rounds >= params.max_rounds {
            budget_exhausted = true;
            break;
        }
        rounds += 1;

        // Once an ego has drawn `factor · P_p` samples, estimating has
        // cost more than enumerating: finish it exactly. This caps total
        // work at a small constant multiple of the exact algorithm in the
        // worst case, with the CI collapsing to the true value.
        let fallback = params.exact_fallback_factor.max(0.0);
        for st in states.iter_mut().filter(|s| s.active) {
            if st.t as f64 >= fallback * st.pairs {
                let cb = ego_betweenness_of(g, st.vertex);
                st.lo = cb;
                st.hi = cb;
                st.exact = true;
                st.active = false;
            }
        }

        // Allocate this round's batches across active egos, clamped so no
        // ego overshoots the exact-fallback threshold by more than 2×.
        let base_batch = params.initial_batch.max(1) << (rounds - 1).min(20);
        let active_ids: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active)
            .map(|(i, _)| i)
            .collect();
        if active_ids.is_empty() {
            continue; // every straggler just got exactified
        }
        let batches: Vec<u64> = match params.strategy {
            SamplingStrategy::Uniform => vec![base_batch; active_ids.len()],
            SamplingStrategy::HubStratified => {
                let total_pairs: f64 = active_ids.iter().map(|&i| states[i].pairs).sum();
                let budget = base_batch.saturating_mul(active_ids.len() as u64);
                active_ids
                    .iter()
                    .map(|&i| {
                        let share = (budget as f64 * states[i].pairs / total_pairs) as u64;
                        share.max(16)
                    })
                    .collect()
            }
        };
        let batches: Vec<u64> = active_ids
            .iter()
            .zip(&batches)
            .map(|(&i, &b)| {
                // Saturate before the integer cast: a huge (or infinite,
                // i.e. "never exactify") factor must mean "no clamp",
                // not a wrapped-to-zero batch.
                let cap = fallback * states[i].pairs;
                if cap.is_finite() && cap < u64::MAX as f64 {
                    b.min((cap as u64).saturating_add(1))
                } else {
                    b
                }
            })
            .collect();

        // Barrier-parallel sampling sweep: each ego owns its RNG, so work
        // partitioning never changes the streams — only who advances them.
        let mut work: Vec<(&mut EgoState, u64)> = Vec::with_capacity(active_ids.len());
        {
            let mut rest: &mut [EgoState] = &mut states;
            let mut offset = 0usize;
            for (&idx, &b) in active_ids.iter().zip(&batches) {
                let (head, tail) = rest.split_at_mut(idx + 1 - offset);
                work.push((&mut head[idx - offset], b));
                rest = tail;
                offset = idx + 1;
            }
        }
        let drawn: u64 = if threads == 1 || work.len() == 1 {
            work.iter_mut()
                .map(|(st, b)| {
                    let nbrs = g.neighbors(st.vertex);
                    sample_batch(g, st, nbrs, *b)
                })
                .sum()
        } else {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let cursor = AtomicUsize::new(0);
            let slots: Vec<std::sync::Mutex<Option<(&mut EgoState, u64)>>> = work
                .into_iter()
                .map(|w| std::sync::Mutex::new(Some(w)))
                .collect();
            let total = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= slots.len() {
                            break;
                        }
                        let (st, b) = slots[i].lock().unwrap().take().expect("claimed once");
                        let nbrs = g.neighbors(st.vertex);
                        let got = sample_batch(g, st, nbrs, b);
                        total.fetch_add(got, Ordering::Relaxed);
                    });
                }
            });
            total.load(Ordering::Relaxed)
        };
        samples_drawn += drawn;

        // Refresh CIs at this round's confidence budget, intersecting with
        // the intervals carried over from earlier rounds.
        let delta_prime = round_delta(params.delta, n, rounds);
        for st in states.iter_mut().filter(|s| s.active) {
            let t = st.t;
            let mean = st.mean();
            let variance = (st.sum_sq / t as f64 - mean * mean).max(0.0);
            let h = match fault {
                ApproxFault::NoVarianceTerm => {
                    // Planted bug: drop the sqrt(2·V·ln/t) term.
                    3.0 * (3.0 / delta_prime).ln() / t as f64
                }
                _ => eb_half_width(variance, t, delta_prime),
            };
            st.lo = st.lo.max((st.pairs * (mean - h)).max(0.0));
            st.hi = st.hi.min((st.pairs * (mean + h)).min(st.pairs));
            if st.lo > st.hi {
                // Intersection emptied (a CI was wrong, or float dust):
                // collapse to the point estimate rather than invert.
                let e = (st.pairs * mean).clamp(st.hi, st.lo);
                st.lo = e;
                st.hi = e;
            }
        }
    }

    // Final selection: top-k by (clamped) estimate, ties to small ids.
    let mut order: Vec<usize> = (0..states.len()).filter(|&i| !states[i].rejected).collect();
    order.sort_by(|&a, &b| {
        states[b]
            .estimate()
            .total_cmp(&states[a].estimate())
            .then(states[a].vertex.cmp(&states[b].vertex))
    });
    let returned = &order[..k.min(order.len())];
    let returned_set: Vec<bool> = {
        let mut m = vec![false; states.len()];
        for &i in returned {
            m[i] = true;
        }
        m
    };

    // Certification boundary: max upper bound over everything not
    // returned (rejected vertices included — their bounds are still valid).
    let uncovered_hi = states
        .iter()
        .enumerate()
        .filter(|(i, _)| !returned_set[*i])
        .map(|(_, s)| s.hi)
        .fold(0.0f64, f64::max);

    // Worst-case displacement: a returned entry can sit at most one CI
    // width below an unreturned true member, which itself can sit at most
    // its own width above its estimate. Settled entries are excluded —
    // they are provable members (zero displacement) whose deliberately
    // relative-precision CIs would otherwise dominate the slack.
    let max_returned_width = returned
        .iter()
        .filter(|&&i| !states[i].settled)
        .map(|&i| states[i].width())
        .fold(0.0f64, f64::max);
    let max_unreturned_width = states
        .iter()
        .enumerate()
        .filter(|(i, s)| !returned_set[*i] && !s.rejected)
        .map(|(_, s)| s.width())
        .fold(0.0f64, f64::max);
    let rank_slack = max_returned_width + max_unreturned_width;

    let entries: Vec<ApproxEntry> = returned
        .iter()
        .map(|&i| {
            let s = &states[i];
            ApproxEntry {
                vertex: s.vertex,
                estimate: s.estimate(),
                lo: s.lo,
                hi: s.hi,
                certified: s.lo >= uncovered_hi,
                exact: s.exact,
            }
        })
        .collect();

    Ok(ApproxTopk {
        entries,
        uncovered_hi,
        rank_slack,
        samples_drawn,
        rounds,
        budget_exhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use egobtw_gen::classic;

    #[test]
    fn exact_cutoff_path_matches_reference_on_karate() {
        let g = classic::karate_club();
        let params = ApproxParams::default(); // cutoff 256 covers every ego
        let out = approx_topk(&g, 5, &params);
        let truth = crate::registry::topk_from_scores(&crate::compute_all_naive(&g), 5);
        assert_eq!(out.samples_drawn, 0, "all egos under the cutoff");
        for (e, (tv, ts)) in out.entries.iter().zip(&truth) {
            assert_eq!(e.vertex, *tv);
            assert!((e.estimate - ts).abs() < 1e-9);
            assert!(e.exact && e.certified);
            assert_eq!(e.lo, e.hi);
        }
    }

    #[test]
    fn forced_sampling_contains_truth_on_star() {
        // Star hub: every pair non-adjacent with zero connectors, so every
        // sample is exactly 1.0 — variance 0, CI collapses fast.
        let g = classic::star(40);
        let mut params = ApproxParams::new(0.05, 0.01);
        params.exact_pair_cutoff = 0;
        let out = approx_topk(&g, 1, &params);
        assert!(out.samples_drawn > 0);
        let e = out.entries[0];
        assert_eq!(e.vertex, 0);
        let truth = 39.0 * 38.0 / 2.0;
        assert!(e.lo - 1e-9 <= truth && truth <= e.hi + 1e-9, "{e:?}");
        assert!(!out.budget_exhausted);
    }

    #[test]
    fn k_zero_and_k_over_n() {
        let g = classic::star(10);
        let out = approx_topk(&g, 0, &ApproxParams::default());
        assert!(out.entries.is_empty());
        let out = approx_topk(&g, 99, &ApproxParams::default());
        assert_eq!(out.entries.len(), 10);
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(approx_topk(&g, 3, &ApproxParams::default())
            .entries
            .is_empty());
        let g1 = CsrGraph::from_edges(1, &[]);
        let out = approx_topk(&g1, 1, &ApproxParams::default());
        assert_eq!(out.entries.len(), 1);
        assert_eq!(out.entries[0].estimate, 0.0);
    }

    #[test]
    fn hub_stratified_agrees_with_truth_within_ci() {
        let g = classic::karate_club();
        let mut params = ApproxParams::new(0.1, 0.05);
        params.strategy = SamplingStrategy::HubStratified;
        params.exact_pair_cutoff = 0;
        params.seed = 7;
        let out = approx_topk(&g, 5, &params);
        let truth = crate::compute_all_naive(&g);
        for e in &out.entries {
            let t = truth[e.vertex as usize];
            assert!(e.lo - 1e-9 <= t && t <= e.hi + 1e-9, "{e:?} truth={t}");
        }
    }

    #[test]
    fn binomial_tail_sane() {
        // P[X >= 0] is 1; P[X >= n+1] is 0; fair-coin symmetry.
        assert_eq!(binomial_tail_ge(10, 0, 0.3), 1.0);
        assert_eq!(binomial_tail_ge(10, 11, 0.3), 0.0);
        let p = binomial_tail_ge(100, 50, 0.5);
        assert!(p > 0.4 && p < 0.7, "{p}");
    }

    #[test]
    fn clopper_pearson_brackets_observed_rate() {
        let up = clopper_pearson_upper(2, 100, 0.05);
        assert!(up > 0.02 && up < 0.12, "{up}");
        assert_eq!(clopper_pearson_upper(5, 5, 0.05), 1.0);
        // Zero failures still yields a positive upper limit (~3/n rule).
        let z = clopper_pearson_upper(0, 100, 0.05);
        assert!(z > 0.0 && z < 0.05, "{z}");
    }
}
