//! BaseBSearch — Algorithm 1.
//!
//! Processes vertices in the total order `≺` (non-increasing static upper
//! bound `ub(u) = d(u)(d(u)−1)/2`), computing each `CB` exactly via the
//! shared engine, and terminates as soon as the answer set holds `k`
//! vertices whose minimum `CB` is at least the next vertex's bound —
//! every remaining vertex then satisfies
//! `CB(w) ≤ ub(w) ≤ ub(next) ≤ min CB(R)` (Theorem 1).

use crate::engine::Engine;
use crate::topk::{TopKSet, TopkResult};
use egobtw_graph::CsrGraph;

/// Runs BaseBSearch for the top `k` ego-betweenness vertices.
///
/// Returns exact `(vertex, CB)` entries sorted by descending `CB`, plus
/// work counters ([`crate::stats::SearchStats::exact_computations`] is the
/// Table II column).
pub fn base_bsearch(g: &CsrGraph, k: usize) -> TopkResult {
    let mut top = TopKSet::new(k);
    let mut engine = Engine::new(g);
    if k == 0 {
        return TopkResult {
            entries: Vec::new(),
            stats: engine.stats,
        };
    }
    let n = g.n();
    for i in 0..n {
        let u = engine.order().at(i);
        if top.is_full() {
            let min_cb = top.min_score().expect("full set has a minimum");
            if min_cb >= g.degree_bound(u) {
                engine.stats.pruned += n - i;
                break;
            }
        }
        engine.process_vertex_in_order(u);
        let cb = engine.finalize_in_order(u);
        top.offer(u, cb);
    }
    TopkResult {
        entries: top.into_sorted_vec(),
        stats: engine.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::compute_all_naive;
    use egobtw_gen::{classic, gnp, toy};

    /// Oracle: top-k from a full naive computation, tie-tolerant — asserts
    /// the returned *values* match the k best values, and that every
    /// returned vertex's value is its true value.
    fn check_against_oracle(g: &CsrGraph, k: usize, result: &TopkResult) {
        let all = compute_all_naive(g);
        let mut sorted: Vec<f64> = all.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let expect_k = k.min(g.n());
        assert_eq!(result.entries.len(), expect_k);
        for (rank, &(v, cb)) in result.entries.iter().enumerate() {
            assert!(
                (cb - all[v as usize]).abs() < 1e-9,
                "returned CB for {v} is wrong: {cb} vs {}",
                all[v as usize]
            );
            assert!(
                (cb - sorted[rank]).abs() < 1e-9,
                "rank {rank} value {cb} differs from oracle {}",
                sorted[rank]
            );
        }
    }

    #[test]
    fn paper_example2_top1_and_top3() {
        let g = toy::paper_graph();
        let r1 = base_bsearch(&g, 1);
        assert_eq!(r1.entries[0].0, toy::ids::F);
        assert!((r1.entries[0].1 - 11.0).abs() < 1e-9);
        let r3 = base_bsearch(&g, 3);
        let mut vs = r3.vertices();
        vs.sort_unstable();
        let mut expect = vec![toy::ids::F, toy::ids::X, toy::ids::I];
        expect.sort_unstable();
        assert_eq!(vs, expect);
    }

    #[test]
    fn paper_example3_computes_exactly_ten_vertices() {
        // Fig. 2: for k = 5, BaseBSearch computes c,i,f,d,x,e,h,g,b,a then
        // stops (ub(j) = 3 < CB(d) = 14/3).
        let g = toy::paper_graph();
        let r = base_bsearch(&g, 5);
        assert_eq!(r.stats.exact_computations, 10);
        let mut vs = r.vertices();
        vs.sort_unstable();
        let mut expect = vec![
            toy::ids::F,
            toy::ids::X,
            toy::ids::I,
            toy::ids::C,
            toy::ids::D,
        ];
        expect.sort_unstable();
        assert_eq!(vs, expect);
        // Exact values per Fig. 2 row.
        let by_rank = r.entries;
        assert!((by_rank[0].1 - 11.0).abs() < 1e-9);
        assert!((by_rank[1].1 - 10.0).abs() < 1e-9);
        assert!((by_rank[2].1 - 8.0).abs() < 1e-9);
        assert!((by_rank[3].1 - 41.0 / 6.0).abs() < 1e-9);
        assert!((by_rank[4].1 - 14.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_n_returns_everything() {
        let g = classic::karate_club();
        let r = base_bsearch(&g, 100);
        check_against_oracle(&g, 100, &r);
        assert_eq!(r.stats.exact_computations, g.n());
    }

    #[test]
    fn k_zero_is_empty() {
        let g = classic::star(5);
        let r = base_bsearch(&g, 0);
        assert!(r.entries.is_empty());
        assert_eq!(r.stats.exact_computations, 0);
    }

    #[test]
    fn pruning_actually_happens_on_star() {
        // Star: hub dominates; k=1 must stop after the hub (all leaves
        // have ub 0).
        let g = classic::star(50);
        let r = base_bsearch(&g, 1);
        assert_eq!(r.stats.exact_computations, 1);
        assert_eq!(r.stats.pruned, 49);
        assert_eq!(r.entries[0], (0, 49.0 * 48.0 / 2.0));
    }

    #[test]
    fn random_graphs_match_oracle_various_k() {
        for seed in 0..4 {
            let g = gnp(45, 0.12, seed);
            for k in [1, 3, 7, 20, 45] {
                let r = base_bsearch(&g, k);
                check_against_oracle(&g, k, &r);
            }
        }
    }

    #[test]
    fn results_sorted_descending() {
        let g = classic::karate_club();
        let r = base_bsearch(&g, 10);
        for w in r.entries.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
