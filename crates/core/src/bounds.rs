//! Upper bounds on ego-betweenness.
//!
//! * **Static bound** (Lemma 2): `ub(p) = d(p)(d(p)−1)/2` — the number of
//!   neighbor pairs; every pair contributes at most 1.
//! * **Dynamic bound** (Lemma 3): the same pair budget discounted by the
//!   information already identified in `S_p` (edges found between
//!   neighbors, connectors found for non-adjacent pairs). It equals `CB(p)`
//!   exactly once `S_p` is complete, and never increases as information
//!   arrives — the property OptBSearch's lazy heap relies on.

use crate::smap::PairMap;
use egobtw_graph::{CsrGraph, VertexId};

/// Static bound `ub(p) = d(d−1)/2` (Lemma 2).
#[inline]
pub fn static_bound(g: &CsrGraph, p: VertexId) -> f64 {
    g.degree_bound(p)
}

/// Dynamic bound `ũb(p)` (Lemma 3) from the current partial map.
#[inline]
pub fn dynamic_bound(g: &CsrGraph, p: VertexId, map: &PairMap) -> f64 {
    map.cb_given_degree(g.degree(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_bound_is_pair_count() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(static_bound(&g, 0), 3.0);
        assert_eq!(static_bound(&g, 1), 0.0);
    }

    #[test]
    fn dynamic_bound_starts_at_static_and_tightens() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]);
        let mut m = PairMap::default();
        assert_eq!(dynamic_bound(&g, 0, &m), static_bound(&g, 0));
        m.set_edge(1, 2); // identified edge between neighbors
        let b = dynamic_bound(&g, 0, &m);
        assert_eq!(b, static_bound(&g, 0) - 1.0);
        m.add_connector(3, 4); // identified connector
        assert_eq!(dynamic_bound(&g, 0, &m), b - 0.5);
    }
}
