//! Per-ego ego-betweenness: the "straightforward algorithm".
//!
//! [`ego_betweenness_of`] materializes one vertex's ego network as a local
//! bitset adjacency matrix and evaluates Lemma 2 directly:
//!
//! ```text
//! CB(p) = Σ over non-adjacent neighbor pairs (u,v) of 1 / (1 + |N(u) ∩ N(v) ∩ N(p)|)
//! ```
//!
//! This serves three roles: the paper's Section-I straw-man baseline
//! ("compute every ego network"), the recompute-on-demand kernel of the
//! lazy top-k maintainer, and — together with the even simpler
//! [`ego_betweenness_reference`] — an independent oracle for testing the
//! shared-work engine.
//!
//! Both functions are generic over [`EgoView`] so they run on the static
//! [`CsrGraph`] and the mutable [`DynGraph`] alike.

use egobtw_graph::{CsrGraph, DynGraph, FxHashMap, VertexId};

/// Minimal adjacency interface needed to evaluate one ego network.
pub trait EgoView {
    /// Number of vertices.
    fn n_vertices(&self) -> usize;
    /// Degree of `u`.
    fn degree_of(&self, u: VertexId) -> usize;
    /// Calls `f` for every neighbor of `u` (any order).
    fn for_each_neighbor(&self, u: VertexId, f: &mut dyn FnMut(VertexId));
    /// Edge membership.
    fn has_edge_between(&self, u: VertexId, v: VertexId) -> bool;
    /// Appends `N(u) ∩ N(v)` to `out` in ascending order. The default
    /// filters `N(u)` by membership; [`CsrGraph`] overrides it with the
    /// hybrid merge/gallop/bitmap dispatch and [`DynGraph`] with a
    /// smaller-set hash probe.
    fn common_neighbors_sorted_into(&self, u: VertexId, v: VertexId, out: &mut Vec<VertexId>) {
        let start = out.len();
        self.for_each_neighbor(u, &mut |w| {
            if self.has_edge_between(w, v) {
                out.push(w);
            }
        });
        out[start..].sort_unstable();
    }
}

impl EgoView for CsrGraph {
    fn n_vertices(&self) -> usize {
        self.n()
    }
    fn degree_of(&self, u: VertexId) -> usize {
        self.degree(u)
    }
    fn for_each_neighbor(&self, u: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &v in self.neighbors(u) {
            f(v);
        }
    }
    fn has_edge_between(&self, u: VertexId, v: VertexId) -> bool {
        self.has_edge(u, v)
    }
    fn common_neighbors_sorted_into(&self, u: VertexId, v: VertexId, out: &mut Vec<VertexId>) {
        self.common_neighbors_into(u, v, out);
    }
}

impl EgoView for DynGraph {
    fn n_vertices(&self) -> usize {
        self.n()
    }
    fn degree_of(&self, u: VertexId) -> usize {
        self.degree(u)
    }
    fn for_each_neighbor(&self, u: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &v in self.neighbors(u) {
            f(v);
        }
    }
    fn has_edge_between(&self, u: VertexId, v: VertexId) -> bool {
        self.has_edge(u, v)
    }
    fn common_neighbors_sorted_into(&self, u: VertexId, v: VertexId, out: &mut Vec<VertexId>) {
        let start = out.len();
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let larger = self.neighbors(b);
        for &w in self.neighbors(a) {
            if larger.contains(&w) {
                out.push(w);
            }
        }
        out[start..].sort_unstable();
    }
}

/// Exact `CB(p)` via a local bitset ego-adjacency matrix.
///
/// Cost: `O(Σ_{w∈N(p)} d(w))` to build the local matrix plus
/// `O(d(p)² · d(p)/64)` for the pairwise popcount sweep — the per-ego cost
/// the paper's shared-work engine amortizes away.
pub fn ego_betweenness_of<V: EgoView + ?Sized>(g: &V, p: VertexId) -> f64 {
    let d = g.degree_of(p);
    if d < 2 {
        return 0.0;
    }
    // Sorted neighbor list → deterministic float summation order.
    let mut nbrs: Vec<VertexId> = Vec::with_capacity(d);
    g.for_each_neighbor(p, &mut |v| nbrs.push(v));
    nbrs.sort_unstable();

    let mut index: FxHashMap<VertexId, u32> = FxHashMap::default();
    index.reserve(d);
    for (i, &v) in nbrs.iter().enumerate() {
        index.insert(v, i as u32);
    }

    // rows[i] = bitset over neighbor indices adjacent to nbrs[i], i.e.
    // the common neighborhood N(p) ∩ N(nbrs[i]) re-indexed locally —
    // served by the view's intersection kernel (hybrid dispatch on CSR).
    let words = d.div_ceil(64);
    let mut rows = vec![0u64; d * words];
    let mut common: Vec<VertexId> = Vec::new();
    for (i, &v) in nbrs.iter().enumerate() {
        common.clear();
        g.common_neighbors_sorted_into(p, v, &mut common);
        for w in &common {
            let j = *index.get(w).expect("common neighbor lies in the ego");
            rows[i * words + (j as usize >> 6)] |= 1u64 << (j & 63);
        }
    }

    let mut cb = 0.0;
    for i in 0..d {
        let row_i = &rows[i * words..(i + 1) * words];
        for j in i + 1..d {
            if row_i[j >> 6] & (1u64 << (j & 63)) != 0 {
                continue; // adjacent pair contributes 0
            }
            let row_j = &rows[j * words..(j + 1) * words];
            let connectors: u32 = row_i
                .iter()
                .zip(row_j)
                .map(|(a, b)| (a & b).count_ones())
                .sum();
            cb += 1.0 / (f64::from(connectors) + 1.0);
        }
    }
    cb
}

/// Dead-simple reference implementation (hash membership, no bitsets).
/// Quadratic-times-degree; used only to cross-check
/// [`ego_betweenness_of`] in tests.
pub fn ego_betweenness_reference<V: EgoView + ?Sized>(g: &V, p: VertexId) -> f64 {
    let mut nbrs: Vec<VertexId> = Vec::new();
    g.for_each_neighbor(p, &mut |v| nbrs.push(v));
    nbrs.sort_unstable();
    let in_ego: egobtw_graph::FxHashSet<VertexId> = nbrs.iter().copied().collect();
    let mut cb = 0.0;
    for (a, &u) in nbrs.iter().enumerate() {
        for &v in nbrs.iter().skip(a + 1) {
            if g.has_edge_between(u, v) {
                continue;
            }
            let mut connectors = 0u32;
            for &w in &nbrs {
                if w != u && w != v && g.has_edge_between(w, u) && g.has_edge_between(w, v) {
                    connectors += 1;
                }
            }
            debug_assert!(in_ego.contains(&u));
            cb += 1.0 / (f64::from(connectors) + 1.0);
        }
    }
    cb
}

/// The straightforward all-vertices baseline: one independent ego
/// computation per vertex. This is the algorithm the paper's introduction
/// dismisses as too costly — kept as a measured baseline and oracle.
pub fn compute_all_naive(g: &CsrGraph) -> Vec<f64> {
    (0..g.n() as VertexId)
        .map(|p| ego_betweenness_of(g, p))
        .collect()
}

/// [`compute_all_naive`] polling `cancel` every few hundred egos, so a
/// deadline-expired or abandoned request stops mid-sweep.
pub fn compute_all_naive_cancellable(
    g: &CsrGraph,
    cancel: &crate::cancel::Cancel,
) -> Result<Vec<f64>, crate::cancel::Cancelled> {
    let mut out = Vec::with_capacity(g.n());
    for p in 0..g.n() as VertexId {
        if p % 256 == 0 {
            cancel.check()?;
        }
        out.push(ego_betweenness_of(g, p));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egobtw_gen::classic;

    const EPS: f64 = 1e-9;

    fn assert_close(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= EPS * a.abs().max(b.abs()).max(1.0),
            "{a} vs {b}"
        );
    }

    #[test]
    fn star_hub_is_maximal() {
        let g = classic::star(7);
        assert_close(ego_betweenness_of(&g, 0), 15.0); // C(6,2)
        for leaf in 1..7 {
            assert_close(ego_betweenness_of(&g, leaf), 0.0);
        }
    }

    #[test]
    fn complete_graph_all_zero() {
        let g = classic::complete(8);
        for v in g.vertices() {
            assert_close(ego_betweenness_of(&g, v), 0.0);
        }
    }

    #[test]
    fn path_interior_is_one() {
        let g = classic::path(5);
        assert_close(ego_betweenness_of(&g, 0), 0.0);
        for v in 1..4 {
            assert_close(ego_betweenness_of(&g, v), 1.0);
        }
    }

    #[test]
    fn cycle_values() {
        for n in [4usize, 5, 8] {
            let g = classic::cycle(n);
            for v in g.vertices() {
                assert_close(ego_betweenness_of(&g, v), 1.0);
            }
        }
        let g3 = classic::cycle(3);
        for v in g3.vertices() {
            assert_close(ego_betweenness_of(&g3, v), 0.0);
        }
    }

    #[test]
    fn paper_example1_cb_of_d() {
        let g = egobtw_gen::toy::paper_graph();
        assert_close(ego_betweenness_of(&g, egobtw_gen::toy::ids::D), 14.0 / 3.0);
    }

    #[test]
    fn golden_values_on_paper_graph() {
        let g = egobtw_gen::toy::paper_graph();
        for (v, expect) in egobtw_gen::toy::expected_cb() {
            let got = ego_betweenness_of(&g, v);
            assert!(
                (got - expect).abs() < 1e-9,
                "CB({}) = {got}, paper says {expect}",
                egobtw_gen::toy::label(v)
            );
        }
    }

    #[test]
    fn bitset_matches_reference_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = rng.random_range(5..40);
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in u + 1..n as u32 {
                    if rng.random_bool(0.25) {
                        edges.push((u, v));
                    }
                }
            }
            let g = CsrGraph::from_edges(n, &edges);
            for v in g.vertices() {
                let fast = ego_betweenness_of(&g, v);
                let slow = ego_betweenness_reference(&g, v);
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "trial {trial}, vertex {v}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn works_on_dyn_graph() {
        let g = classic::star(6);
        let dg = DynGraph::from_csr(&g);
        assert_close(ego_betweenness_of(&dg, 0), 10.0);
        assert_close(
            ego_betweenness_of(&dg, 0),
            ego_betweenness_reference(&dg, 0),
        );
    }

    #[test]
    fn wide_ego_crosses_word_boundary() {
        // Hub with 130 leaves exercises multi-word bitset rows.
        let g = classic::star(131);
        assert_close(ego_betweenness_of(&g, 0), 130.0 * 129.0 / 2.0);
    }
}
