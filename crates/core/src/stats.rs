//! Instrumentation counters.
//!
//! Table II of the paper compares BaseBSearch and OptBSearch by the
//! *number of vertices whose ego-betweenness is computed exactly* — the
//! honest measure of pruning power, independent of constant factors.
//! [`SearchStats`] carries that plus the underlying triangle/diamond work.

/// Work counters accumulated by a search or a full computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Vertices whose `CB` was computed exactly (Table II's metric).
    pub exact_computations: usize,
    /// Triangles processed by the engine.
    pub triangles_processed: u64,
    /// Diamond (connector) discoveries — each bumps two maps.
    pub diamonds_counted: u64,
    /// Vertices pruned by a bound without exact computation.
    pub pruned: usize,
    /// Dynamic-bound refreshes (OptBSearch pops that recomputed `ũb`).
    pub bound_refreshes: usize,
    /// Re-insertions into the lazy heap after a bound refresh.
    pub heap_reinserts: usize,
}

impl SearchStats {
    /// Merges counters from another run (used when a harness aggregates
    /// per-thread stats).
    pub fn merge(&mut self, other: &SearchStats) {
        self.exact_computations += other.exact_computations;
        self.triangles_processed += other.triangles_processed;
        self.diamonds_counted += other.diamonds_counted;
        self.pruned += other.pruned;
        self.bound_refreshes += other.bound_refreshes;
        self.heap_reinserts += other.heap_reinserts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = SearchStats {
            exact_computations: 1,
            triangles_processed: 2,
            diamonds_counted: 3,
            pruned: 4,
            bound_refreshes: 5,
            heap_reinserts: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.exact_computations, 2);
        assert_eq!(a.triangles_processed, 4);
        assert_eq!(a.diamonds_counted, 6);
        assert_eq!(a.pruned, 8);
        assert_eq!(a.bound_refreshes, 10);
        assert_eq!(a.heap_reinserts, 12);
    }
}
