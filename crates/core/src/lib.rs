//! Top-k ego-betweenness search — the paper's core contribution.
//!
//! For a vertex `p`, the *ego network* `GE(p)` is the subgraph induced by
//! `N(p) ∪ {p}`, and the *ego-betweenness* `CB(p)` sums, over pairs of
//! `p`'s neighbors, the fraction of shortest paths between them (inside
//! `GE(p)`) that pass through `p`. Because every ego network has diameter
//! ≤ 2 through its center, a non-adjacent pair `(u,v)` with `c` common
//! connectors (excluding `p`) contributes exactly `1/(c+1)`, and adjacent
//! pairs contribute 0 (Lemma 2 of the paper).
//!
//! This crate implements:
//!
//! * [`naive`] — the per-ego "straightforward algorithm" (bitset-based) and
//!   a simple reference implementation; these are both baselines and test
//!   oracles;
//! * [`smap`] — the per-vertex pair-count maps `S_u`, the shared data
//!   structure behind Algorithms 1–3;
//! * [`engine`] — the unified triangle-driven engine: ordered processing
//!   (BaseBSearch), on-demand ego completion (EgoBWCal), and diamond
//!   bookkeeping that counts each connector exactly once;
//! * [`bounds`] — the static upper bound `ub` (Lemma 2) and the dynamic,
//!   monotonically tightening bound `ũb` (Lemma 3);
//! * [`cancel`] — the cooperative [`Cancel`] token (explicit flag +
//!   optional deadline) every engine polls at coarse checkpoints, so a
//!   serving layer can stop an abandoned or deadline-expired request;
//! * [`base_search`] — **BaseBSearch** (Algorithm 1);
//! * [`opt_search`] — **OptBSearch** (Algorithm 2) with the gradient ratio
//!   `θ` and EgoBWCal (Algorithm 3);
//! * [`approx`] — adaptive pair-sampling engines with (ε, δ) rank
//!   guarantees and per-vertex empirical-Bernstein confidence intervals,
//!   for graphs the exact engines can't touch;
//! * [`compute_all`] — exact `CB` for every vertex via a single
//!   edge-centric pass (the `k = n` baseline, and the kernel that the
//!   parallel crate distributes);
//! * [`topk`] — ordered-float utilities and the bounded top-k set;
//! * [`registry`] — the enumerable engine registry: every top-k path in
//!   this crate under a stable name and a uniform signature, so harnesses
//!   discover engines instead of hand-listing them;
//! * [`stats`] — instrumentation counters (exact computations per search —
//!   Table II of the paper — plus triangle/diamond work).
//!
//! # Quick start
//!
//! ```
//! use egobtw_core::opt_search::{opt_bsearch, OptParams};
//!
//! // A 5-star: the hub's neighbors are pairwise non-adjacent, so the hub
//! // scores C(5,2) = 10 and the leaves score 0.
//! let g = egobtw_graph::CsrGraph::from_edges(
//!     6, &[(0,1),(0,2),(0,3),(0,4),(0,5)]);
//! let result = opt_bsearch(&g, 1, OptParams::default());
//! assert_eq!(result.entries[0], (0, 10.0));
//! ```

#![warn(missing_docs)]

pub mod approx;
pub mod base_search;
pub mod bounds;
pub mod cancel;
pub mod compute_all;
pub mod engine;
pub mod naive;
pub mod opt_search;
pub mod registry;
pub mod smap;
pub mod stats;
pub mod topk;

pub use approx::{
    approx_topk, approx_topk_cancellable, approx_topk_with_fault, binomial_tail_ge,
    clopper_pearson_upper, eb_half_width, round_delta, ApproxEntry, ApproxFault, ApproxParams,
    ApproxTopk, SamplingStrategy,
};
pub use base_search::base_bsearch;
pub use cancel::{Cancel, Cancelled};
pub use compute_all::{compute_all, compute_all_cancellable};
pub use engine::Engine;
pub use naive::{compute_all_naive, compute_all_naive_cancellable, ego_betweenness_of, EgoView};
pub use opt_search::{opt_bsearch, opt_bsearch_cancellable, OptParams};
pub use registry::{builtin_engines, topk_from_scores, EngineKind, RegisteredEngine};
pub use stats::SearchStats;
pub use topk::{TopKSet, TopkResult};
