//! OptBSearch — Algorithm 2, with EgoBWCal (Algorithm 3) inside the engine.
//!
//! Instead of the frozen degree bound, OptBSearch keeps vertices in a
//! max-heap keyed by the *dynamic* bound `ũb` (Lemma 3), which tightens as
//! other vertices' exact computations deposit information into the shared
//! maps. On each pop the bound is refreshed; if it dropped substantially
//! (`θ·ũb < old`), the vertex is pushed back (or pruned outright when it
//! can no longer reach the top-k) instead of being computed. The gradient
//! ratio `θ ≥ 1` trades bound-refresh cost against exact-computation cost
//! (Exp-2 sweeps it; the paper's default is 1.05).
//!
//! The heap is a lazy push-duplicates structure: `bound[v]` records the
//! value of `v`'s only *live* entry, and popped entries that disagree with
//! it are stale and skipped — the flat-structure idiom recommended over
//! decrease-key heaps.

use crate::cancel::{Cancel, Cancelled};
use crate::engine::Engine;
use crate::topk::{OrdF64, TopKSet, TopkResult};
use egobtw_graph::{CsrGraph, VertexId};
use std::collections::BinaryHeap;

/// Tuning knobs for [`opt_bsearch`].
#[derive(Clone, Copy, Debug)]
pub struct OptParams {
    /// Gradient ratio `θ ≥ 1` (paper default 1.05): a popped vertex is
    /// re-enqueued rather than computed when `θ·ũb < old_bound`.
    pub theta: f64,
}

impl Default for OptParams {
    fn default() -> Self {
        OptParams { theta: 1.05 }
    }
}

/// Runs OptBSearch for the top `k` ego-betweenness vertices.
pub fn opt_bsearch(g: &CsrGraph, k: usize, params: OptParams) -> TopkResult {
    opt_bsearch_cancellable(g, k, params, &Cancel::never())
        .expect("a never-cancelled search cannot be cancelled")
}

/// Heap pops between cancellation checkpoints in
/// [`opt_bsearch_cancellable`] — an exact computation per pop is the unit
/// of work, so this bounds wasted post-cancel work to a handful of egos.
const CANCEL_POLL_POPS: u32 = 32;

/// [`opt_bsearch`] with cooperative cancellation, polled every
/// [`CANCEL_POLL_POPS`] heap pops.
pub fn opt_bsearch_cancellable(
    g: &CsrGraph,
    k: usize,
    params: OptParams,
    cancel: &Cancel,
) -> Result<TopkResult, Cancelled> {
    assert!(params.theta >= 1.0, "θ must be ≥ 1");
    let mut engine = Engine::new(g);
    let mut top = TopKSet::new(k);
    if k == 0 || g.n() == 0 {
        return Ok(TopkResult {
            entries: Vec::new(),
            stats: engine.stats,
        });
    }
    let n = g.n();
    // Live bound per vertex; NEG_INFINITY once computed exactly or pruned.
    let mut bound: Vec<f64> = (0..n as VertexId).map(|v| g.degree_bound(v)).collect();
    let mut heap: BinaryHeap<(OrdF64, VertexId)> = (0..n as VertexId)
        .map(|v| (OrdF64(bound[v as usize]), v))
        .collect();

    let mut pops = 0u32;
    while let Some((OrdF64(tb), v)) = heap.pop() {
        pops += 1;
        // `== 1` so the very first pop polls: a token fired before the
        // search started must cancel even a search that would terminate
        // early, and `k` small searches often pop < CANCEL_POLL_POPS times.
        if pops % CANCEL_POLL_POPS == 1 {
            cancel.check()?;
        }
        if tb != bound[v as usize] {
            continue; // stale duplicate
        }
        let fresh = engine.dynamic_bound(v);
        engine.stats.bound_refreshes += 1;
        if params.theta * fresh < tb {
            // Bound dropped substantially: requeue or prune (Alg. 2, l.8-11).
            match top.min_score() {
                Some(min_cb) if top.is_full() && fresh <= min_cb => {
                    bound[v as usize] = f64::NEG_INFINITY;
                    engine.stats.pruned += 1;
                }
                _ => {
                    bound[v as usize] = fresh;
                    heap.push((OrdF64(fresh), v));
                    engine.stats.heap_reinserts += 1;
                }
            }
            continue;
        }
        // Early termination (Alg. 2, l.12): `tb` dominates every remaining
        // bound (bounds only decrease, stale entries are never smaller).
        if top.is_full() && tb <= top.min_score().expect("full set") {
            break;
        }
        let cb = engine.complete_vertex(v);
        bound[v as usize] = f64::NEG_INFINITY;
        top.offer(v, cb);
    }
    Ok(TopkResult {
        entries: top.into_sorted_vec(),
        stats: engine.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base_search::base_bsearch;
    use crate::naive::compute_all_naive;
    use egobtw_gen::{classic, gnp, toy};

    fn check_against_oracle(g: &CsrGraph, k: usize, result: &TopkResult) {
        let all = compute_all_naive(g);
        let mut sorted: Vec<f64> = all.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        assert_eq!(result.entries.len(), k.min(g.n()));
        for (rank, &(v, cb)) in result.entries.iter().enumerate() {
            assert!((cb - all[v as usize]).abs() < 1e-9, "value for {v}");
            assert!((cb - sorted[rank]).abs() < 1e-9, "rank {rank}");
        }
    }

    #[test]
    fn paper_example4_result_and_pruning() {
        // k=5, θ=1 on the Fig. 1 graph: answers {f,x,i,c,d}; the paper's
        // trace invokes EgoBWCal six times — our heap may tie-break pops
        // differently, so assert the pruning is at least as strong as
        // BaseBSearch's ten computations and the result is exact.
        let g = toy::paper_graph();
        let r = opt_bsearch(&g, 5, OptParams { theta: 1.0 });
        let mut vs = r.vertices();
        vs.sort_unstable();
        let mut expect = vec![
            toy::ids::F,
            toy::ids::X,
            toy::ids::I,
            toy::ids::C,
            toy::ids::D,
        ];
        expect.sort_unstable();
        assert_eq!(vs, expect);
        assert!(
            r.stats.exact_computations <= 8,
            "dynamic bound should beat BaseBSearch's 10 exact computations \
             (paper trace: 6); got {}",
            r.stats.exact_computations
        );
        check_against_oracle(&g, 5, &r);
    }

    #[test]
    fn matches_base_search_values_everywhere() {
        for seed in 0..4 {
            let g = gnp(40, 0.15, seed);
            for k in [1, 5, 15, 40] {
                let b = base_bsearch(&g, k);
                let o = opt_bsearch(&g, k, OptParams::default());
                let bv: Vec<f64> = b.entries.iter().map(|e| e.1).collect();
                let ov: Vec<f64> = o.entries.iter().map(|e| e.1).collect();
                for (x, y) in bv.iter().zip(&ov) {
                    assert!((x - y).abs() < 1e-9, "seed {seed} k {k}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn oracle_on_named_graphs() {
        for g in [
            classic::karate_club(),
            classic::barbell(6),
            classic::star(12),
            classic::complete(9),
        ] {
            for k in [1, 4, 9] {
                let r = opt_bsearch(&g, k, OptParams::default());
                check_against_oracle(&g, k, &r);
            }
        }
    }

    #[test]
    fn theta_insensitive_results() {
        // θ changes work, never answers.
        let g = gnp(50, 0.1, 9);
        let reference = opt_bsearch(&g, 10, OptParams { theta: 1.0 });
        for theta in [1.05, 1.15, 1.3, 2.0] {
            let r = opt_bsearch(&g, 10, OptParams { theta });
            let rv: Vec<f64> = reference.entries.iter().map(|e| e.1).collect();
            let tv: Vec<f64> = r.entries.iter().map(|e| e.1).collect();
            for (x, y) in rv.iter().zip(&tv) {
                assert!((x - y).abs() < 1e-9, "θ={theta}");
            }
        }
    }

    #[test]
    fn prunes_at_least_as_well_as_base() {
        // Table II's headline: OptBSearch computes no more vertices
        // exactly than BaseBSearch.
        for seed in 0..3 {
            let g = gnp(60, 0.12, seed);
            for k in [5, 15] {
                let b = base_bsearch(&g, k);
                let o = opt_bsearch(&g, k, OptParams::default());
                assert!(
                    o.stats.exact_computations <= b.stats.exact_computations,
                    "seed {seed} k {k}: opt {} vs base {}",
                    o.stats.exact_computations,
                    b.stats.exact_computations
                );
            }
        }
    }

    #[test]
    fn k_zero_and_k_over_n() {
        let g = classic::star(6);
        assert!(opt_bsearch(&g, 0, OptParams::default()).entries.is_empty());
        let r = opt_bsearch(&g, 99, OptParams::default());
        assert_eq!(r.entries.len(), 6);
        check_against_oracle(&g, 99, &r);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let r = opt_bsearch(&g, 3, OptParams::default());
        assert!(r.entries.is_empty());
    }

    #[test]
    fn cancelled_search_stops_instead_of_answering() {
        let g = gnp(80, 0.1, 11);
        let token = Cancel::new();
        token.cancel();
        assert!(matches!(
            opt_bsearch_cancellable(&g, 10, OptParams::default(), &token),
            Err(Cancelled)
        ));
        // And a live token changes nothing about the answer.
        let fine = opt_bsearch_cancellable(&g, 10, OptParams::default(), &Cancel::new()).unwrap();
        let plain = opt_bsearch(&g, 10, OptParams::default());
        assert_eq!(fine.entries, plain.entries);
    }
}
